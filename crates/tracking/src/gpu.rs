//! Algorithm 1: segmented probabilistic streamlining on the simulated GPU.
//!
//! ```text
//! for every sample volume:
//!     Copy3DImagesToGPU()
//!     for i in 0..NumSegments:
//!         SendStartPointsToGPU()
//!         LaunchGPUKernel(NumThreads, NumIterations[i])
//!         ReadEndPointFromGPU()
//!         Reduction()            // CPU compacts unfinished pathways
//! ```
//!
//! One lane tracks one streamline; lanes are compacted between launches so
//! every launch's wavefronts are densely packed with live walkers.

use crate::connectivity::ConnectivityAccumulator;
use crate::field::SampleFieldView;
use crate::getter::{lane_rng, PosteriorSampleGetter};
use crate::probabilistic::{initial_direction, jittered_seed};
use crate::segmentation::SegmentationStrategy;
use crate::stop::StopStack;
use crate::walker::{StopReason, TrackingParams, Walker};
use tracto_gpu_sim::{Gpu, LaneStatus, SimKernel, TimingLedger};
use tracto_mcmc::SampleVolumes;
use tracto_rng::HybridTaus;
use tracto_volume::{Mask, Vec3};

/// Simulated size of one lane's transferable state (float3 position +
/// float3 direction + step counter + status word).
pub const LANE_BYTES: u64 = 32;

/// Bytes of one sample volume resident on the device: six f32 fields
/// (f₁, f₂, θ₁, φ₁, θ₂, φ₂) over the grid.
pub fn sample_volume_bytes(samples: &SampleVolumes) -> u64 {
    6 * samples.dims().len() as u64 * 4
}

/// One tracking lane: a walker plus its identity for post-compaction
/// bookkeeping and its private RNG stream (deterministic getters never
/// draw from it).
#[derive(Debug, Clone)]
pub struct TrackLane {
    walker: Walker,
    rng: HybridTaus,
}

/// The tracking kernel over one sample volume: a prebuilt direction
/// getter plus the stop-criterion stack, shared read-only across lanes.
struct TrackingKernel<'a> {
    getter: PosteriorSampleGetter<SampleFieldView<'a>>,
    step_length: f64,
    stop: StopStack<'a>,
}

impl<'a> TrackingKernel<'a> {
    fn new(field: SampleFieldView<'a>, params: &TrackingParams, mask: Option<&'a Mask>) -> Self {
        TrackingKernel {
            getter: PosteriorSampleGetter::new(field, params.interp, params.min_fraction),
            step_length: params.step_length,
            stop: StopStack::standard(params, mask),
        }
    }
}

impl SimKernel for TrackingKernel<'_> {
    type Lane = TrackLane;

    #[inline]
    fn step(&self, lane: &mut TrackLane) -> LaneStatus {
        match lane
            .walker
            .step_with(&self.getter, self.step_length, &self.stop, &mut lane.rng)
        {
            StopReason::Running => LaneStatus::Continue,
            _ => LaneStatus::Finished,
        }
    }
}

/// Seed submission ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedOrdering {
    /// Seeds in natural (voxel linear) order — the default kernel mapping.
    Natural,
    /// Seeds ordered by descending fiber length of a pilot sample (the
    /// Fig. 4 "sorting the load" strategy, shown by the paper not to help).
    SortedByPilot,
}

/// Configuration + driver for GPU-simulated probabilistic streamlining.
#[derive(Clone)]
pub struct GpuTracker<'a> {
    /// Posterior sample stack.
    pub samples: &'a SampleVolumes,
    /// Tracking parameters.
    pub params: TrackingParams,
    /// Seed positions.
    pub seeds: Vec<Vec3>,
    /// Optional tracking mask.
    pub mask: Option<&'a Mask>,
    /// Segmentation strategy (the `NumIterations[]` array).
    pub strategy: SegmentationStrategy,
    /// Seed submission ordering.
    pub ordering: SeedOrdering,
    /// Sub-voxel jitter amplitude.
    pub jitter: f64,
    /// Run seed.
    pub run_seed: u64,
    /// Record per-voxel visits (costs lane memory; off for timing runs).
    pub record_visits: bool,
}

/// Result of a GPU-simulated tracking run.
#[derive(Debug, Clone)]
pub struct GpuTrackingReport {
    /// Timing breakdown (kernel / reduction / transfer — Table II columns).
    pub ledger: TimingLedger,
    /// `lengths_by_sample[s][seed]`: steps per original seed index.
    pub lengths_by_sample: Vec<Vec<u32>>,
    /// Submission order per sample (original seed indices) — thread loads in
    /// SIMD order are `order.map(|i| lengths[i])`.
    pub submission_orders: Vec<Vec<u32>>,
    /// Lanes still unfinished after each segment, per sample.
    pub per_segment_unfinished: Vec<Vec<usize>>,
    /// Total steps (Table II "Total fiber length").
    pub total_steps: u64,
    /// Visit counts when `record_visits` was set.
    pub connectivity: Option<ConnectivityAccumulator>,
}

impl GpuTrackingReport {
    /// Thread loads in submission (SIMD) order for one sample.
    pub fn thread_loads(&self, sample: usize) -> Vec<u32> {
        self.submission_orders[sample]
            .iter()
            .map(|&i| self.lengths_by_sample[sample][i as usize])
            .collect()
    }

    /// Longest fiber across the run.
    pub fn longest(&self) -> u32 {
        self.lengths_by_sample
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// In-flight state of one sample volume being streamed through the device.
struct SampleStream<'a> {
    sample: usize,
    stream: usize,
    order: Vec<u32>,
    lanes: Vec<TrackLane>,
    kernel: TrackingKernel<'a>,
    unfinished_after_segment: Vec<usize>,
}

impl<'a> GpuTracker<'a> {
    /// Execute Algorithm 1 on `gpu`. The device ledger is reset first so
    /// the report's timing covers exactly this run.
    pub fn run(&self, gpu: &mut Gpu) -> GpuTrackingReport {
        gpu.reset();
        let num_samples = self.samples.num_samples();
        let n_seeds = self.seeds.len();
        let budgets = self.strategy.budgets(self.params.max_steps);

        let mut lengths_by_sample = vec![vec![0u32; n_seeds]; num_samples];
        let mut submission_orders = Vec::with_capacity(num_samples);
        let mut per_segment_unfinished = Vec::with_capacity(num_samples);
        let mut connectivity = self
            .record_visits
            .then(|| ConnectivityAccumulator::new(self.samples.dims()));
        let mut total_steps = 0u64;
        let mut pilot_lengths: Option<Vec<u32>> = None;

        for sample in 0..num_samples {
            // Copy3DImagesToGPU(): the six parameter fields of this sample.
            let volume_bytes = sample_volume_bytes(self.samples);
            let lane_bytes = n_seeds as u64 * LANE_BYTES;
            gpu.device_alloc(volume_bytes + lane_bytes)
                .unwrap_or_else(|err| panic!("{err} (shrink the grid or sample count)"));
            gpu.transfer_to_device(volume_bytes);

            let order: Vec<u32> = match (&self.ordering, &pilot_lengths) {
                (SeedOrdering::SortedByPilot, Some(pilot)) => {
                    let mut idx: Vec<u32> = (0..n_seeds as u32).collect();
                    idx.sort_by_key(|&i| std::cmp::Reverse(pilot[i as usize]));
                    idx
                }
                _ => (0..n_seeds as u32).collect(),
            };

            let field = SampleFieldView::new(self.samples, sample);
            let mut lanes: Vec<TrackLane> = order
                .iter()
                .map(|&seed_idx| {
                    let pos = jittered_seed(
                        self.seeds[seed_idx as usize],
                        self.run_seed,
                        sample,
                        seed_idx as usize,
                        self.jitter,
                    );
                    let dir = initial_direction(&field, pos, self.params.min_fraction)
                        .unwrap_or(Vec3::ZERO);
                    let walker = if self.record_visits {
                        Walker::new_recording(seed_idx, pos, dir)
                    } else {
                        Walker::new(seed_idx, pos, dir)
                    };
                    let mut lane = TrackLane {
                        walker,
                        rng: lane_rng(self.run_seed, sample, seed_idx as usize),
                    };
                    if dir == Vec3::ZERO {
                        // No eligible population at the seed: dead on
                        // arrival, finishes in the first iteration.
                        lane.walker.stop = StopReason::NoDirection;
                    }
                    lane
                })
                .collect();

            // SendStartPointsToGPU().
            gpu.transfer_to_device(lanes.len() as u64 * LANE_BYTES);

            let kernel = TrackingKernel::new(field, &self.params, self.mask);
            let mut unfinished_after_segment = Vec::with_capacity(budgets.len());

            for (seg_idx, &budget) in budgets.iter().enumerate() {
                if lanes.is_empty() {
                    break;
                }
                if seg_idx > 0 {
                    // Re-upload the compacted start points.
                    gpu.transfer_to_device(lanes.len() as u64 * LANE_BYTES);
                }
                gpu.launch(&kernel, &mut lanes, budget);
                // ReadEndPointFromGPU().
                gpu.transfer_to_host(lanes.len() as u64 * LANE_BYTES);
                // Reduction(): compact, retiring finished lanes.
                gpu.host_reduction(lanes.len() as u64);
                let mut still_running = Vec::with_capacity(lanes.len());
                for lane in lanes.drain(..) {
                    if lane.walker.alive() {
                        still_running.push(lane);
                    } else {
                        self.retire(
                            &lane,
                            sample,
                            &mut lengths_by_sample,
                            &mut connectivity,
                            &mut total_steps,
                        );
                    }
                }
                lanes = still_running;
                unfinished_after_segment.push(lanes.len());
            }
            // Budgets sum to max_steps, so every walker has terminated.
            debug_assert!(lanes.is_empty(), "lanes survived the full budget");
            for lane in lanes.drain(..) {
                self.retire(
                    &lane,
                    sample,
                    &mut lengths_by_sample,
                    &mut connectivity,
                    &mut total_steps,
                );
            }

            gpu.device_free(volume_bytes + lane_bytes);
            if sample == 0 && self.ordering == SeedOrdering::SortedByPilot {
                pilot_lengths = Some(lengths_by_sample[0].clone());
            }
            submission_orders.push(order);
            per_segment_unfinished.push(unfinished_after_segment);
        }

        GpuTrackingReport {
            ledger: *gpu.ledger(),
            lengths_by_sample,
            submission_orders,
            per_segment_unfinished,
            total_steps,
            connectivity,
        }
    }

    /// Execute Algorithm 1 with `streams` sample volumes in flight at once.
    ///
    /// Samples are processed in groups of `streams`, each pinned to its own
    /// stream lane on the device's [`StreamClock`](tracto_gpu_sim::StreamClock):
    /// within a group, segment rounds are issued round-robin so one
    /// sample's lane uploads, readbacks, and CPU compactions hide behind
    /// another sample's kernels — the Fig. 8 overlap, now on the real
    /// execution path. Device memory holds at most `streams` sample
    /// volumes at a time.
    ///
    /// Results are bit-identical to [`run`](Self::run): streams reorder
    /// *time* only — every walker is stepped by the same code in the same
    /// per-lane order, and retirement writes are indexed by seed, never
    /// order-dependent. `streams <= 1` *is* the serialized path.
    pub fn run_streamed(&self, gpu: &mut Gpu, streams: usize) -> GpuTrackingReport {
        if streams <= 1 {
            return self.run(gpu);
        }
        gpu.reset();
        let num_samples = self.samples.num_samples();
        let n_seeds = self.seeds.len();
        let budgets = self.strategy.budgets(self.params.max_steps);
        let volume_bytes = sample_volume_bytes(self.samples);

        let mut lengths_by_sample = vec![vec![0u32; n_seeds]; num_samples];
        let mut submission_orders: Vec<Vec<u32>> = Vec::with_capacity(num_samples);
        let mut per_segment_unfinished: Vec<Vec<usize>> = Vec::with_capacity(num_samples);
        let mut connectivity = self
            .record_visits
            .then(|| ConnectivityAccumulator::new(self.samples.dims()));
        let mut total_steps = 0u64;
        let mut pilot_lengths: Option<Vec<u32>> = None;

        // Sorted ordering needs the pilot's lengths before any other
        // sample's submission order exists: the pilot runs as its own
        // group, the rest overlap.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let first_group = if self.ordering == SeedOrdering::SortedByPilot && num_samples > 0 {
            groups.push(vec![0]);
            1
        } else {
            0
        };
        for chunk in (first_group..num_samples)
            .collect::<Vec<_>>()
            .chunks(streams)
        {
            groups.push(chunk.to_vec());
        }

        for group in groups {
            let mut in_flight: Vec<SampleStream<'a>> = Vec::with_capacity(group.len());
            // Copy3DImagesToGPU() + SendStartPointsToGPU() for the whole
            // group, one stream lane per sample.
            for (slot, &sample) in group.iter().enumerate() {
                let lane_bytes = n_seeds as u64 * LANE_BYTES;
                gpu.device_alloc(volume_bytes + lane_bytes)
                    .unwrap_or_else(|err| {
                        panic!("{err} (shrink the grid, sample count, or stream count)")
                    });
                gpu.try_transfer_to_device_on(volume_bytes, slot)
                    .expect("transfer failed on a device with a fault plan");
                let order: Vec<u32> = match (&self.ordering, &pilot_lengths) {
                    (SeedOrdering::SortedByPilot, Some(pilot)) => {
                        let mut idx: Vec<u32> = (0..n_seeds as u32).collect();
                        idx.sort_by_key(|&i| std::cmp::Reverse(pilot[i as usize]));
                        idx
                    }
                    _ => (0..n_seeds as u32).collect(),
                };
                let field = SampleFieldView::new(self.samples, sample);
                let lanes: Vec<TrackLane> = order
                    .iter()
                    .map(|&seed_idx| {
                        let pos = jittered_seed(
                            self.seeds[seed_idx as usize],
                            self.run_seed,
                            sample,
                            seed_idx as usize,
                            self.jitter,
                        );
                        let dir = initial_direction(&field, pos, self.params.min_fraction)
                            .unwrap_or(Vec3::ZERO);
                        let walker = if self.record_visits {
                            Walker::new_recording(seed_idx, pos, dir)
                        } else {
                            Walker::new(seed_idx, pos, dir)
                        };
                        let mut lane = TrackLane {
                            walker,
                            rng: lane_rng(self.run_seed, sample, seed_idx as usize),
                        };
                        if dir == Vec3::ZERO {
                            lane.walker.stop = StopReason::NoDirection;
                        }
                        lane
                    })
                    .collect();
                gpu.try_transfer_to_device_on(lanes.len() as u64 * LANE_BYTES, slot)
                    .expect("transfer failed on a device with a fault plan");
                in_flight.push(SampleStream {
                    sample,
                    stream: slot,
                    order,
                    lanes,
                    kernel: TrackingKernel::new(field, &self.params, self.mask),
                    unfinished_after_segment: Vec::with_capacity(budgets.len()),
                });
            }

            // Segment rounds, round-robin across the group's streams: the
            // launch of one sample overlaps the readback + reduction of
            // the previous one.
            for (seg_idx, &budget) in budgets.iter().enumerate() {
                let mut any = false;
                for st in in_flight.iter_mut() {
                    if st.lanes.is_empty() {
                        continue;
                    }
                    any = true;
                    if seg_idx > 0 {
                        // Re-upload the compacted start points.
                        gpu.try_transfer_to_device_on(
                            st.lanes.len() as u64 * LANE_BYTES,
                            st.stream,
                        )
                        .expect("transfer failed on a device with a fault plan");
                    }
                    gpu.try_launch_on(&st.kernel, &mut st.lanes, budget, st.stream)
                        .expect("launch failed on a device with a fault plan");
                    gpu.try_transfer_to_host_on(st.lanes.len() as u64 * LANE_BYTES, st.stream)
                        .expect("transfer failed on a device with a fault plan");
                    gpu.host_reduction_on(st.lanes.len() as u64, st.stream);
                    let mut still_running = Vec::with_capacity(st.lanes.len());
                    for lane in st.lanes.drain(..) {
                        if lane.walker.alive() {
                            still_running.push(lane);
                        } else {
                            self.retire(
                                &lane,
                                st.sample,
                                &mut lengths_by_sample,
                                &mut connectivity,
                                &mut total_steps,
                            );
                        }
                    }
                    st.lanes = still_running;
                    st.unfinished_after_segment.push(st.lanes.len());
                }
                if !any {
                    break;
                }
            }

            for st in in_flight {
                debug_assert!(st.lanes.is_empty(), "lanes survived the full budget");
                gpu.device_free(volume_bytes + n_seeds as u64 * LANE_BYTES);
                if st.sample == 0 && self.ordering == SeedOrdering::SortedByPilot {
                    pilot_lengths = Some(lengths_by_sample[0].clone());
                }
                submission_orders.push(st.order);
                per_segment_unfinished.push(st.unfinished_after_segment);
            }
        }

        GpuTrackingReport {
            ledger: *gpu.ledger(),
            lengths_by_sample,
            submission_orders,
            per_segment_unfinished,
            total_steps,
            connectivity,
        }
    }

    fn retire(
        &self,
        lane: &TrackLane,
        sample: usize,
        lengths_by_sample: &mut [Vec<u32>],
        connectivity: &mut Option<ConnectivityAccumulator>,
        total_steps: &mut u64,
    ) {
        let seed = lane.walker.seed_id as usize;
        lengths_by_sample[sample][seed] = lane.walker.steps;
        *total_steps += lane.walker.steps as u64;
        if let Some(acc) = connectivity.as_mut() {
            if lane.walker.path.is_empty() {
                acc.add_empty();
            } else {
                acc.add_path(&lane.walker.path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::InterpMode;
    use crate::probabilistic::{CpuTracker, RecordMode};
    use tracto_gpu_sim::DeviceConfig;
    use tracto_volume::Dim3;

    fn x_samples(dims: Dim3, n: usize) -> SampleVolumes {
        let mut sv = SampleVolumes::zeros(dims, n);
        for c in dims.iter() {
            for s in 0..n {
                sv.f1.set(c, s, 0.6);
                sv.th1.set(c, s, std::f64::consts::FRAC_PI_2 as f32);
                sv.ph1.set(c, s, 0.0);
            }
        }
        sv
    }

    fn params() -> TrackingParams {
        TrackingParams {
            step_length: 0.5,
            angular_threshold: 0.8,
            max_steps: 200,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        }
    }

    fn small_gpu() -> Gpu {
        Gpu::new(DeviceConfig {
            wavefront_size: 4,
            num_compute_units: 2,
            waves_per_cu: 2,
            ..DeviceConfig::radeon_5870()
        })
    }

    fn tracker<'a>(
        sv: &'a SampleVolumes,
        seeds: Vec<Vec3>,
        strategy: SegmentationStrategy,
    ) -> GpuTracker<'a> {
        GpuTracker {
            samples: sv,
            params: params(),
            seeds,
            mask: None,
            strategy,
            ordering: SeedOrdering::Natural,
            jitter: 0.4,
            run_seed: 5,
            record_visits: false,
        }
    }

    fn line_seeds(dims: Dim3) -> Vec<Vec3> {
        (0..dims.nx)
            .map(|i| Vec3::new(i as f64, 2.0, 2.0))
            .collect()
    }

    #[test]
    fn gpu_lengths_match_cpu_reference() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 3);
        let seeds = line_seeds(dims);
        let gpu_run =
            tracker(&sv, seeds.clone(), SegmentationStrategy::paper_b()).run(&mut small_gpu());
        let cpu = CpuTracker {
            samples: &sv,
            params: params(),
            seeds,
            mask: None,
            jitter: 0.4,
            run_seed: 5,
            bidirectional: false,
        }
        .run_serial(RecordMode::LengthsOnly);
        assert_eq!(
            gpu_run.lengths_by_sample, cpu.lengths_by_sample,
            "bit-identical results regardless of segmentation (the paper's CPU≡GPU check)"
        );
        assert_eq!(gpu_run.total_steps, cpu.total_steps);
    }

    #[test]
    fn results_invariant_to_strategy() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 2);
        let seeds = line_seeds(dims);
        let runs: Vec<_> = [
            SegmentationStrategy::Single,
            SegmentationStrategy::Uniform(10),
            SegmentationStrategy::every_step(),
            SegmentationStrategy::paper_b(),
            SegmentationStrategy::paper_c(),
        ]
        .into_iter()
        .map(|s| tracker(&sv, seeds.clone(), s).run(&mut small_gpu()))
        .collect();
        for r in &runs[1..] {
            assert_eq!(r.lengths_by_sample, runs[0].lengths_by_sample);
        }
    }

    #[test]
    fn finer_segmentation_more_launches_more_transfer() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 2);
        let seeds = line_seeds(dims);
        let single =
            tracker(&sv, seeds.clone(), SegmentationStrategy::Single).run(&mut small_gpu());
        let every =
            tracker(&sv, seeds.clone(), SegmentationStrategy::every_step()).run(&mut small_gpu());
        assert!(every.ledger.launches > single.ledger.launches);
        assert!(every.ledger.transfer_s > single.ledger.transfer_s);
        assert!(every.ledger.reduction_s > single.ledger.reduction_s);
        // And the single launch wastes more SIMD cycles.
        assert!(single.ledger.simd_utilization() <= every.ledger.simd_utilization() + 1e-12);
    }

    #[test]
    fn unfinished_counts_decrease() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 1);
        let seeds = line_seeds(dims);
        let run = tracker(&sv, seeds, SegmentationStrategy::paper_b()).run(&mut small_gpu());
        let counts = &run.per_segment_unfinished[0];
        for w in counts.windows(2) {
            assert!(
                w[1] <= w[0],
                "unfinished counts must be non-increasing: {counts:?}"
            );
        }
        assert_eq!(*counts.last().unwrap(), 0);
    }

    #[test]
    fn sorted_ordering_uses_pilot() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 3);
        let seeds = line_seeds(dims);
        let mut t = tracker(&sv, seeds, SegmentationStrategy::Single);
        t.ordering = SeedOrdering::SortedByPilot;
        let run = t.run(&mut small_gpu());
        // Sample 0 is the pilot: natural order.
        assert_eq!(run.submission_orders[0], (0..12).collect::<Vec<u32>>());
        // Later samples are sorted by descending pilot length.
        let pilot = &run.lengths_by_sample[0];
        let order1 = &run.submission_orders[1];
        for w in order1.windows(2) {
            assert!(
                pilot[w[0] as usize] >= pilot[w[1] as usize],
                "submission not sorted by pilot: {order1:?} lens {pilot:?}"
            );
        }
        // Lengths are still reported per original seed.
        assert_eq!(run.lengths_by_sample[1].len(), 12);
    }

    #[test]
    fn thread_loads_permuted_view() {
        let dims = Dim3::new(8, 6, 6);
        let sv = x_samples(dims, 1);
        let seeds = line_seeds(dims);
        let run = tracker(&sv, seeds, SegmentationStrategy::Single).run(&mut small_gpu());
        let loads = run.thread_loads(0);
        assert_eq!(loads, run.lengths_by_sample[0], "natural order is identity");
    }

    #[test]
    fn connectivity_when_recording() {
        let dims = Dim3::new(10, 6, 6);
        let sv = x_samples(dims, 2);
        let mut t = tracker(
            &sv,
            vec![Vec3::new(0.0, 2.0, 2.0)],
            SegmentationStrategy::paper_b(),
        );
        t.record_visits = true;
        t.jitter = 0.0;
        let run = t.run(&mut small_gpu());
        let acc = run.connectivity.unwrap();
        assert_eq!(acc.total_streamlines(), 2);
        assert!(acc.probability(tracto_volume::Ijk::new(5, 2, 2)) > 0.9);
    }

    #[test]
    fn ledger_charges_sample_volume_uploads() {
        let dims = Dim3::new(8, 6, 6);
        let sv = x_samples(dims, 3);
        let run =
            tracker(&sv, line_seeds(dims), SegmentationStrategy::Single).run(&mut small_gpu());
        let expected_volume_bytes = 3 * sample_volume_bytes(&sv);
        assert!(run.ledger.bytes_h2d >= expected_volume_bytes);
    }

    #[test]
    fn streamed_run_bit_identical_to_serialized() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 5);
        let seeds = line_seeds(dims);
        let mut t = tracker(&sv, seeds, SegmentationStrategy::paper_b());
        t.record_visits = true;
        let serial = t.run(&mut small_gpu());
        for streams in [2usize, 3, 8] {
            let streamed = t.run_streamed(&mut small_gpu(), streams);
            assert_eq!(streamed.lengths_by_sample, serial.lengths_by_sample);
            assert_eq!(streamed.total_steps, serial.total_steps);
            assert_eq!(streamed.submission_orders, serial.submission_orders);
            assert_eq!(
                streamed.per_segment_unfinished,
                serial.per_segment_unfinished
            );
            let (a, b) = (
                serial.connectivity.as_ref().unwrap(),
                streamed.connectivity.as_ref().unwrap(),
            );
            assert_eq!(a.total_streamlines(), b.total_streamlines());
            for c in dims.iter() {
                assert_eq!(a.count(c), b.count(c));
            }
        }
    }

    #[test]
    fn streamed_run_overlaps_host_work() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 4);
        let seeds = line_seeds(dims);
        let t = tracker(&sv, seeds, SegmentationStrategy::paper_b());
        let mut g_serial = small_gpu();
        let mut g_streamed = small_gpu();
        t.run(&mut g_serial);
        t.run_streamed(&mut g_streamed, 2);
        assert!(g_streamed.overlap_saved_s() > 0.0);
        assert!(
            g_streamed.clock_s() < g_serial.clock_s(),
            "streamed {0} vs serialized {1}",
            g_streamed.clock_s(),
            g_serial.clock_s()
        );
    }

    #[test]
    fn streamed_sorted_ordering_still_runs_pilot_first() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 4);
        let seeds = line_seeds(dims);
        let mut t = tracker(&sv, seeds, SegmentationStrategy::Single);
        t.ordering = SeedOrdering::SortedByPilot;
        let serial = t.run(&mut small_gpu());
        let streamed = t.run_streamed(&mut small_gpu(), 3);
        assert_eq!(streamed.submission_orders, serial.submission_orders);
        assert_eq!(streamed.lengths_by_sample, serial.lengths_by_sample);
    }

    #[test]
    fn longest_reported() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 1);
        let run =
            tracker(&sv, line_seeds(dims), SegmentationStrategy::Single).run(&mut small_gpu());
        assert_eq!(
            run.longest(),
            run.lengths_by_sample
                .iter()
                .flatten()
                .copied()
                .max()
                .unwrap()
        );
        assert!(run.longest() > 0);
    }
}
