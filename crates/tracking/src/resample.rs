//! Streamline post-processing: arc-length resampling and smoothing.
//!
//! Fine step lengths (0.1 voxels in Table II) produce thousands of nearly
//! collinear points per fiber; visualization and downstream shape analysis
//! (the paper's Figs. 9/11/12 renders) work on resampled, lightly smoothed
//! polylines.

use tracto_volume::Vec3;

/// Total polyline length (sum of segment lengths).
pub fn polyline_length(points: &[Vec3]) -> f64 {
    points.windows(2).map(|w| (w[1] - w[0]).norm()).sum()
}

/// Resample a polyline to exactly `n` points, uniformly spaced by arc
/// length. End points are preserved. `n ≥ 2`; degenerate inputs (fewer than
/// two points or zero length) are returned unchanged.
pub fn resample_by_arclength(points: &[Vec3], n: usize) -> Vec<Vec3> {
    assert!(n >= 2, "need at least two output points");
    if points.len() < 2 {
        return points.to_vec();
    }
    let total = polyline_length(points);
    if total == 0.0 {
        return points.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    out.push(points[0]);
    let mut seg = 0usize;
    let mut seg_start_s = 0.0;
    let mut seg_len = (points[1] - points[0]).norm();
    for i in 1..n - 1 {
        let target = total * i as f64 / (n - 1) as f64;
        while seg_start_s + seg_len < target && seg + 2 < points.len() {
            seg_start_s += seg_len;
            seg += 1;
            seg_len = (points[seg + 1] - points[seg]).norm();
        }
        let t = if seg_len > 0.0 {
            (target - seg_start_s) / seg_len
        } else {
            0.0
        };
        out.push(points[seg].lerp(points[seg + 1], t.clamp(0.0, 1.0)));
    }
    out.push(*points.last().expect("nonempty"));
    out
}

/// One pass of Laplacian smoothing with weight `lambda ∈ [0, 1]`: each
/// interior point moves toward the midpoint of its neighbors. End points
/// are fixed.
pub fn smooth_laplacian(points: &[Vec3], lambda: f64, passes: usize) -> Vec<Vec3> {
    assert!((0.0..=1.0).contains(&lambda));
    let mut cur = points.to_vec();
    if cur.len() < 3 {
        return cur;
    }
    let mut next = cur.clone();
    for _ in 0..passes {
        for i in 1..cur.len() - 1 {
            let mid = (cur[i - 1] + cur[i + 1]) * 0.5;
            next[i] = cur[i].lerp(mid, lambda);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Mean absolute turning angle (radians) between consecutive segments — a
/// smoothness metric.
pub fn mean_turning_angle(points: &[Vec3]) -> f64 {
    if points.len() < 3 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for w in points.windows(3) {
        let a = (w[1] - w[0]).normalized();
        let b = (w[2] - w[1]).normalized();
        if a != Vec3::ZERO && b != Vec3::ZERO {
            total += a.angle_between(b);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zigzag(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| Vec3::new(i as f64, if i % 2 == 0 { 0.0 } else { 0.5 }, 0.0))
            .collect()
    }

    #[test]
    fn length_of_straight_line() {
        let pts: Vec<Vec3> = (0..5).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        assert!((polyline_length(&pts) - 4.0).abs() < 1e-12);
        assert_eq!(polyline_length(&[Vec3::ZERO]), 0.0);
    }

    #[test]
    fn resample_preserves_endpoints_and_count() {
        let pts = zigzag(20);
        let r = resample_by_arclength(&pts, 7);
        assert_eq!(r.len(), 7);
        assert_eq!(r[0], pts[0]);
        assert_eq!(*r.last().unwrap(), *pts.last().unwrap());
    }

    #[test]
    fn resample_uniform_spacing_on_straight_line() {
        let pts: Vec<Vec3> = (0..11).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let r = resample_by_arclength(&pts, 5);
        for (i, p) in r.iter().enumerate() {
            assert!((p.x - 2.5 * i as f64).abs() < 1e-9, "point {i}: {p:?}");
        }
    }

    #[test]
    fn resample_nonuniform_input_spacing() {
        // Input with uneven segment lengths still yields even output.
        let pts = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.1, 0.0, 0.0),
            Vec3::new(10.0, 0.0, 0.0),
        ];
        let r = resample_by_arclength(&pts, 6);
        let gaps: Vec<f64> = r.windows(2).map(|w| (w[1] - w[0]).norm()).collect();
        for g in &gaps {
            assert!((g - 2.0).abs() < 1e-9, "gap {g}");
        }
    }

    #[test]
    fn resample_degenerate_inputs() {
        assert_eq!(resample_by_arclength(&[], 4), Vec::<Vec3>::new());
        let one = vec![Vec3::new(1.0, 2.0, 3.0)];
        assert_eq!(resample_by_arclength(&one, 4), one);
        let stuck = vec![Vec3::ZERO, Vec3::ZERO];
        assert_eq!(resample_by_arclength(&stuck, 4), stuck);
    }

    #[test]
    fn smoothing_reduces_turning_angle() {
        let pts = zigzag(30);
        let before = mean_turning_angle(&pts);
        let after = mean_turning_angle(&smooth_laplacian(&pts, 0.5, 5));
        assert!(after < before * 0.6, "turning {before:.3} → {after:.3}");
    }

    #[test]
    fn smoothing_fixes_endpoints() {
        let pts = zigzag(12);
        let s = smooth_laplacian(&pts, 0.8, 10);
        assert_eq!(s[0], pts[0]);
        assert_eq!(*s.last().unwrap(), *pts.last().unwrap());
        assert_eq!(s.len(), pts.len());
    }

    #[test]
    fn smoothing_identity_cases() {
        let pts = zigzag(10);
        assert_eq!(smooth_laplacian(&pts, 0.0, 5), pts);
        let short = vec![Vec3::ZERO, Vec3::X];
        assert_eq!(smooth_laplacian(&short, 0.7, 3), short);
    }

    #[test]
    fn straight_line_already_smooth() {
        let pts: Vec<Vec3> = (0..10).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        assert!(mean_turning_angle(&pts) < 1e-12);
    }
}
