//! Classical deterministic tensor-line tractography — the baseline the
//! paper's introduction criticizes: streamlines step along the principal
//! eigenvector of a per-voxel tensor fit. Sensitive to noise, blind to
//! crossings (a single tensor cannot represent two populations), and
//! produces exactly one trajectory per seed with no confidence measure.

use crate::deterministic::{track_streamline, Streamline};
use crate::field::{FnField, OrientationField};
use crate::walker::TrackingParams;
use tracto_diffusion::{Acquisition, TensorFit};
use tracto_volume::{Dim3, Ijk, Mask, Vec3, Volume4};

/// A per-voxel tensor-fit field: principal direction + fractional
/// anisotropy, usable directly as an [`OrientationField`] with one stick
/// whose "fraction" is the FA (so the walker's `min_fraction` acts as the
/// classical FA termination threshold the paper lists among the
/// deterministic stop criteria).
#[derive(Debug, Clone)]
pub struct TensorField {
    dims: Dim3,
    dirs: Vec<Vec3>,
    fa: Vec<f64>,
}

impl TensorField {
    /// Fit a tensor in every voxel of the DWI volume. Voxels where the fit
    /// fails get zero FA (invisible to tracking).
    pub fn fit(acq: &Acquisition, dwi: &Volume4<f32>) -> Self {
        let dims = dwi.dims();
        let mut dirs = vec![Vec3::ZERO; dims.len()];
        let mut fa = vec![0.0; dims.len()];
        for idx in 0..dims.len() {
            let signal: Vec<f64> = dwi.voxel_at(idx).iter().map(|&v| v as f64).collect();
            if let Some(fit) = TensorFit::fit(acq, &signal) {
                let f = fit.tensor.fractional_anisotropy();
                if f.is_finite() && f > 0.0 {
                    dirs[idx] = fit.tensor.principal_direction();
                    fa[idx] = f;
                }
            }
        }
        TensorField { dims, dirs, fa }
    }

    /// Fractional anisotropy map accessor.
    pub fn fa_at(&self, c: Ijk) -> f64 {
        self.fa[self.dims.index(c)]
    }

    /// Principal direction accessor.
    pub fn dir_at(&self, c: Ijk) -> Vec3 {
        self.dirs[self.dims.index(c)]
    }

    /// Re-encode the tensor fit as a one-sample posterior stack (stick 1 =
    /// principal direction with FA as its "fraction", stick 2 empty), so
    /// the tensorline modality runs through the unchanged sample-volume
    /// tracking machinery — GPU lanes, batching, caching and all.
    pub fn to_sample_volumes(&self) -> tracto_mcmc::SampleVolumes {
        let mut sv = tracto_mcmc::SampleVolumes::zeros(self.dims, 1);
        for c in self.dims.iter() {
            let i = self.dims.index(c);
            let (dir, fa) = (self.dirs[i], self.fa[i]);
            if dir == Vec3::ZERO || fa <= 0.0 {
                continue;
            }
            let (theta, phi) = dir.to_spherical();
            sv.f1.set(c, 0, fa as f32);
            sv.th1.set(c, 0, theta as f32);
            sv.ph1.set(c, 0, phi as f32);
        }
        sv
    }

    /// Mean FA over a mask — the map-level sanity statistic.
    pub fn mean_fa(&self, mask: &Mask) -> f64 {
        let idx = mask.indices();
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter().map(|&i| self.fa[i]).sum::<f64>() / idx.len() as f64
    }
}

impl OrientationField for TensorField {
    fn dims(&self) -> Dim3 {
        self.dims
    }

    fn sticks(&self, c: Ijk) -> [(Vec3, f64); 2] {
        let i = self.dims.index(c);
        [(self.dirs[i], self.fa[i]), (Vec3::ZERO, 0.0)]
    }
}

/// Track one deterministic tensor-line from a seed (direction = principal
/// eigenvector there). `params.min_fraction` is the FA threshold.
pub fn track_tensorline(
    field: &TensorField,
    seed_id: u32,
    seed: Vec3,
    params: &TrackingParams,
    mask: Option<&Mask>,
    record: bool,
) -> Option<Streamline> {
    let c = Ijk::new(
        seed.x.round().max(0.0) as usize,
        seed.y.round().max(0.0) as usize,
        seed.z.round().max(0.0) as usize,
    );
    if !field.dims().contains(c) {
        return None;
    }
    let dir = field.dir_at(c);
    if dir == Vec3::ZERO || field.fa_at(c) < params.min_fraction {
        return None;
    }
    Some(track_streamline(
        field, seed_id, seed, dir, params, mask, record,
    ))
}

/// A closure field wrapper for hand-built tensor baselines in tests.
pub fn field_from_fn(
    dims: Dim3,
    f: impl Fn(Ijk) -> (Vec3, f64) + Sync,
) -> FnField<impl Fn(Ijk) -> [(Vec3, f64); 2] + Sync> {
    FnField::new(dims, move |c| {
        let (d, fa) = f(c);
        [(d, fa), (Vec3::ZERO, 0.0)]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::InterpMode;
    use tracto_phantom::datasets;

    fn params() -> TrackingParams {
        TrackingParams {
            step_length: 0.3,
            angular_threshold: 0.8,
            max_steps: 1000,
            min_fraction: 0.15, // classical FA floor
            interp: InterpMode::Nearest,
        }
    }

    #[test]
    fn tensor_field_recovers_bundle_direction() {
        let ds = datasets::single_bundle(Dim3::new(12, 8, 8), None, 3);
        let field = TensorField::fit(&ds.acq, &ds.dwi);
        let c = Ijk::new(6, 3, 3);
        assert_eq!(ds.truth.at(c).count, 1);
        assert!(field.fa_at(c) > 0.3, "on-bundle FA {}", field.fa_at(c));
        assert!(
            field.dir_at(c).dot(Vec3::X).abs() > 0.95,
            "principal dir {:?}",
            field.dir_at(c)
        );
        // Off-bundle voxels are nearly isotropic.
        let off = Ijk::new(6, 0, 0);
        assert!(field.fa_at(off) < field.fa_at(c));
    }

    #[test]
    fn tensorline_tracks_the_clean_bundle() {
        let ds = datasets::single_bundle(Dim3::new(16, 8, 8), None, 3);
        let field = TensorField::fit(&ds.acq, &ds.dwi);
        let s = track_tensorline(&field, 0, Vec3::new(1.0, 3.0, 3.0), &params(), None, true)
            .expect("seed on bundle");
        assert!(s.steps > 20, "tracked {} steps", s.steps);
        let last = s.points.last().unwrap();
        assert!(last.x > 10.0, "followed the bundle to {last:?}");
    }

    #[test]
    fn sample_volume_encoding_round_trips_the_fit() {
        use crate::field::SampleFieldView;
        let ds = datasets::single_bundle(Dim3::new(12, 8, 8), None, 3);
        let field = TensorField::fit(&ds.acq, &ds.dwi);
        let sv = field.to_sample_volumes();
        assert_eq!(sv.num_samples(), 1);
        let view = SampleFieldView::new(&sv, 0);
        for c in field.dims().iter() {
            let [(d, f), (_, f2)] = view.sticks(c);
            let (td, tf) = (field.dir_at(c), field.fa_at(c));
            assert_eq!(f2, 0.0, "second stick stays empty");
            if td == Vec3::ZERO || tf <= 0.0 {
                assert_eq!(f, 0.0);
                continue;
            }
            // f32 storage: direction within rounding of the fit.
            assert!((f - tf).abs() < 1e-6, "fa {f} vs {tf}");
            assert!(d.dot(td).abs() > 0.999_99, "dir {d:?} vs {td:?}");
        }
    }

    #[test]
    fn tensorline_refuses_low_fa_seed() {
        let ds = datasets::single_bundle(Dim3::new(12, 8, 8), None, 3);
        let field = TensorField::fit(&ds.acq, &ds.dwi);
        // Corner voxel: isotropic.
        assert!(
            track_tensorline(&field, 0, Vec3::new(0.0, 0.0, 0.0), &params(), None, false).is_none()
        );
    }

    #[test]
    fn crossing_makes_tensor_oblate() {
        // The motivating failure: at a 90° crossing the single tensor goes
        // oblate (λ₁ ≈ λ₂ ≫ λ₃): its "principal direction" is an arbitrary
        // in-plane axis, so deterministic tensor tracking is unreliable
        // exactly where the two-stick model still resolves both bundles.
        let dims = Dim3::new(14, 14, 5);
        let ds = datasets::crossing(dims, 90.0, None, 8);
        let crossing = Ijk::new(6, 6, 2);
        let single = Ijk::new(1, 6, 2); // on bundle A only
        assert_eq!(ds.truth.at(crossing).count, 2);
        assert_eq!(ds.truth.at(single).count, 1);
        let shape = |c: Ijk| {
            let signal: Vec<f64> = ds.dwi.voxel(c).iter().map(|&v| v as f64).collect();
            let fit = TensorFit::fit(&ds.acq, &signal).unwrap();
            let [l1, l2, l3] = fit.tensor.eigenvalues();
            // Westin-style prolate vs planar discriminator.
            (
                (l1 - l2) / (l1 - l3).max(1e-12),
                (l2 - l3) / (l1 - l3).max(1e-12),
            )
        };
        let (cl_single, _) = shape(single);
        let (cl_cross, cp_cross) = shape(crossing);
        assert!(
            cl_single > 2.0 * cl_cross,
            "single-fiber voxel must be far more prolate: CL {cl_single:.2} vs {cl_cross:.2}"
        );
        assert!(
            cp_cross > cl_cross,
            "crossing voxel must be planar-dominant: CP {cp_cross:.2} vs CL {cl_cross:.2}"
        );
    }

    #[test]
    fn mean_fa_statistic() {
        let ds = datasets::single_bundle(Dim3::new(12, 8, 8), None, 3);
        let field = TensorField::fit(&ds.acq, &ds.dwi);
        let on = ds.truth.fiber_mask();
        let all = Mask::full(ds.dwi.dims());
        assert!(field.mean_fa(&on) > field.mean_fa(&all));
        assert_eq!(field.mean_fa(&Mask::empty(ds.dwi.dims())), 0.0);
    }
}
