//! Visit counting and connectivity estimation.
//!
//! "Having obtained the probabilistic streamlines from the seed point A
//! with all the samples, we may then get the connectivity P(∃A→B|Y) by
//! simply counting the number of streamlines passing through B, and
//! dividing it by the total number of the streamlines."

use tracto_volume::{Dim3, Ijk, Mask, Vec3, Volume3};

/// Accumulates per-voxel visit counts over many streamlines. A streamline
/// contributes at most 1 to each voxel it traverses.
#[derive(Debug, Clone)]
pub struct ConnectivityAccumulator {
    dims: Dim3,
    counts: Vec<u32>,
    total_streamlines: u64,
}

impl ConnectivityAccumulator {
    /// New empty accumulator over a grid.
    pub fn new(dims: Dim3) -> Self {
        ConnectivityAccumulator {
            dims,
            counts: vec![0; dims.len()],
            total_streamlines: 0,
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// Total streamlines accumulated (the connectivity denominator).
    pub fn total_streamlines(&self) -> u64 {
        self.total_streamlines
    }

    /// Map a trajectory to the sorted, deduplicated set of voxel linear
    /// indices it traverses.
    pub fn voxels_of_path(dims: Dim3, points: &[Vec3]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::with_capacity(points.len() / 4 + 1);
        let mut last = u32::MAX;
        for p in points {
            let i = p.x.round();
            let j = p.y.round();
            let k = p.z.round();
            if i < 0.0 || j < 0.0 || k < 0.0 {
                continue;
            }
            let c = Ijk::new(i as usize, j as usize, k as usize);
            if !dims.contains(c) {
                continue;
            }
            let idx = dims.index(c) as u32;
            if idx != last {
                out.push(idx);
                last = idx;
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Count one streamline given its trajectory points.
    pub fn add_path(&mut self, points: &[Vec3]) {
        let voxels = Self::voxels_of_path(self.dims, points);
        self.add_visited(&voxels);
    }

    /// Count one streamline given its already-deduplicated visited voxel
    /// indices.
    pub fn add_visited(&mut self, visited: &[u32]) {
        for &idx in visited {
            self.counts[idx as usize] += 1;
        }
        self.total_streamlines += 1;
    }

    /// Count a streamline that visited nothing (e.g. zero-length).
    pub fn add_empty(&mut self) {
        self.total_streamlines += 1;
    }

    /// Raw visit count of a voxel.
    pub fn count(&self, c: Ijk) -> u32 {
        self.counts[self.dims.index(c)]
    }

    /// Connection probability `P(∃ seed → c)`: visits / total streamlines.
    pub fn probability(&self, c: Ijk) -> f64 {
        if self.total_streamlines == 0 {
            return 0.0;
        }
        self.count(c) as f64 / self.total_streamlines as f64
    }

    /// The full probability volume.
    pub fn probability_volume(&self) -> Volume3<f32> {
        let total = self.total_streamlines.max(1) as f64;
        Volume3::from_fn(self.dims, |c| {
            (self.counts[self.dims.index(c)] as f64 / total) as f32
        })
    }

    /// Probability that a streamline reaches *any* voxel of `target` —
    /// used for region-to-region connectivity. Computed from counts as an
    /// upper bound refinement is not possible post-hoc, so this accumulates
    /// by the maximum voxel count in the region (a streamline crossing the
    /// region touches at least its best-visited voxel).
    pub fn region_probability_upper(&self, target: &Mask) -> f64 {
        if self.total_streamlines == 0 {
            return 0.0;
        }
        let best = target
            .indices()
            .into_iter()
            .map(|i| self.counts[i])
            .max()
            .unwrap_or(0);
        best as f64 / self.total_streamlines as f64
    }

    /// Merge another accumulator (same dims).
    pub fn merge(&mut self, other: &ConnectivityAccumulator) {
        assert_eq!(self.dims, other.dims, "accumulator dims must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total_streamlines += other.total_streamlines;
    }
}

/// A region-to-region connectivity matrix: entry `(i, j)` is the fraction of
/// streamlines seeded in region `i` that pass through region `j` — the
/// paper's `P` matrix restricted to regions of interest (the full
/// `NumVoxels × NumVoxels` matrix at paper scale is ~160 GB, which is why
/// the output stage aggregates).
#[derive(Debug, Clone)]
pub struct RegionConnectivity {
    n: usize,
    /// counts[i][j]: streamlines from region i that crossed region j.
    counts: Vec<Vec<u64>>,
    /// streamlines seeded per region.
    totals: Vec<u64>,
}

impl RegionConnectivity {
    /// New matrix over `n` regions.
    pub fn new(n: usize) -> Self {
        RegionConnectivity {
            n,
            counts: vec![vec![0; n]; n],
            totals: vec![0; n],
        }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.n
    }

    /// Record one streamline seeded in `seed_region` whose visited voxel
    /// indices are `visited`; `regions` are the target masks.
    pub fn add_streamline(&mut self, seed_region: usize, visited: &[u32], regions: &[Mask]) {
        assert_eq!(regions.len(), self.n);
        self.totals[seed_region] += 1;
        for (j, region) in regions.iter().enumerate() {
            let dims = region.dims();
            let hit = visited.iter().any(|&idx| {
                let c = dims.coords(idx as usize);
                region.contains(c)
            });
            if hit {
                self.counts[seed_region][j] += 1;
            }
        }
    }

    /// Connection probability from region `i` to region `j`.
    pub fn probability(&self, i: usize, j: usize) -> f64 {
        if self.totals[i] == 0 {
            return 0.0;
        }
        self.counts[i][j] as f64 / self.totals[i] as f64
    }

    /// Streamlines seeded in region `i`.
    pub fn seeded(&self, i: usize) -> u64 {
        self.totals[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_voxels_dedup() {
        let dims = Dim3::new(8, 4, 4);
        // Many sub-voxel steps through two voxels.
        let points: Vec<Vec3> = (0..20)
            .map(|i| Vec3::new(i as f64 * 0.1, 2.0, 2.0))
            .collect();
        let voxels = ConnectivityAccumulator::voxels_of_path(dims, &points);
        assert_eq!(voxels.len(), 3); // x rounds to 0, 1, 2
    }

    #[test]
    fn path_voxels_skip_out_of_bounds() {
        let dims = Dim3::new(2, 2, 2);
        let points = vec![
            Vec3::new(-3.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(9.0, 0.0, 0.0),
        ];
        let voxels = ConnectivityAccumulator::voxels_of_path(dims, &points);
        assert_eq!(voxels.len(), 1);
    }

    #[test]
    fn probability_counts_streamlines_once_per_voxel() {
        let dims = Dim3::new(4, 1, 1);
        let mut acc = ConnectivityAccumulator::new(dims);
        // Streamline oscillating within voxel 1 — still one visit.
        acc.add_path(&[
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.2, 0.0, 0.0),
            Vec3::new(0.9, 0.0, 0.0),
        ]);
        acc.add_path(&[Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 0.0, 0.0)]);
        assert_eq!(acc.total_streamlines(), 2);
        assert_eq!(acc.count(Ijk::new(1, 0, 0)), 2);
        assert_eq!(acc.count(Ijk::new(2, 0, 0)), 1);
        assert_eq!(acc.probability(Ijk::new(1, 0, 0)), 1.0);
        assert_eq!(acc.probability(Ijk::new(2, 0, 0)), 0.5);
        assert_eq!(acc.probability(Ijk::new(3, 0, 0)), 0.0);
    }

    #[test]
    fn empty_streamline_counts_in_denominator() {
        let dims = Dim3::new(2, 1, 1);
        let mut acc = ConnectivityAccumulator::new(dims);
        acc.add_path(&[Vec3::new(0.0, 0.0, 0.0)]);
        acc.add_empty();
        assert_eq!(acc.total_streamlines(), 2);
        assert_eq!(acc.probability(Ijk::new(0, 0, 0)), 0.5);
    }

    #[test]
    fn probability_volume_matches_pointwise() {
        let dims = Dim3::new(3, 1, 1);
        let mut acc = ConnectivityAccumulator::new(dims);
        acc.add_path(&[Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)]);
        acc.add_path(&[Vec3::new(1.0, 0.0, 0.0)]);
        let vol = acc.probability_volume();
        for c in dims.iter() {
            assert!((*vol.get(c) as f64 - acc.probability(c)).abs() < 1e-7);
        }
    }

    #[test]
    fn merge_accumulates() {
        let dims = Dim3::new(2, 1, 1);
        let mut a = ConnectivityAccumulator::new(dims);
        let mut b = ConnectivityAccumulator::new(dims);
        a.add_path(&[Vec3::new(0.0, 0.0, 0.0)]);
        b.add_path(&[Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)]);
        a.merge(&b);
        assert_eq!(a.total_streamlines(), 2);
        assert_eq!(a.count(Ijk::new(0, 0, 0)), 2);
        assert_eq!(a.count(Ijk::new(1, 0, 0)), 1);
    }

    #[test]
    fn region_matrix_probabilities() {
        let dims = Dim3::new(4, 1, 1);
        let left = Mask::from_fn(dims, |c| c.i < 2);
        let right = Mask::from_fn(dims, |c| c.i >= 2);
        let regions = vec![left, right];
        let mut m = RegionConnectivity::new(2);
        // Two streamlines from region 0: one crosses into region 1, one not.
        m.add_streamline(0, &[0, 1, 2], &regions);
        m.add_streamline(0, &[0], &regions);
        assert_eq!(m.seeded(0), 2);
        assert_eq!(m.probability(0, 1), 0.5);
        assert_eq!(m.probability(0, 0), 1.0);
        assert_eq!(m.probability(1, 0), 0.0, "nothing seeded in region 1");
        assert_eq!(m.num_regions(), 2);
    }

    #[test]
    fn region_probability_upper_bound() {
        let dims = Dim3::new(4, 1, 1);
        let mut acc = ConnectivityAccumulator::new(dims);
        acc.add_path(&[Vec3::new(2.0, 0.0, 0.0)]);
        acc.add_path(&[Vec3::new(3.0, 0.0, 0.0)]);
        let target = Mask::from_fn(dims, |c| c.i >= 2);
        // Each voxel saw 1 of 2 streamlines; the max-voxel estimate is 0.5.
        assert_eq!(acc.region_probability_upper(&target), 0.5);
    }
}
