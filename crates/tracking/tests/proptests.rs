//! Property-based tests of tracking invariants.

use proptest::prelude::*;
use tracto_tracking::connectivity::ConnectivityAccumulator;
use tracto_tracking::field::{FnField, InterpMode};
use tracto_tracking::walker::{TrackingParams, Walker};
use tracto_tracking::SegmentationStrategy;
use tracto_volume::{Dim3, Ijk, Vec3};

fn strategy_strategy() -> impl Strategy<Value = SegmentationStrategy> {
    prop_oneof![
        Just(SegmentationStrategy::Single),
        (1u32..64).prop_map(SegmentationStrategy::Uniform),
        prop::collection::vec(1u32..50, 1..8).prop_map(SegmentationStrategy::Increasing),
        Just(SegmentationStrategy::paper_b()),
        Just(SegmentationStrategy::paper_c()),
    ]
}

proptest! {
    #[test]
    fn budgets_cover_max_steps_exactly(s in strategy_strategy(), max in 1u32..3000) {
        let b = s.budgets(max);
        prop_assert_eq!(b.iter().sum::<u32>(), max);
        prop_assert!(b.iter().all(|&x| x > 0));
    }

    #[test]
    fn walker_never_leaves_volume(
        nx in 4usize..12, ny in 4usize..12, nz in 4usize..12,
        sx in 0.0f64..1.0, sy in 0.0f64..1.0, sz in 0.0f64..1.0,
        theta in 0.0f64..std::f64::consts::PI,
        phi in -std::f64::consts::PI..std::f64::consts::PI,
        field_seed in 0u64..500,
        step in 0.05f64..0.9,
    ) {
        let dims = Dim3::new(nx, ny, nz);
        // Pseudo-random direction field.
        let f = FnField::new(dims, move |c: Ijk| {
            let mut h = field_seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((c.i * 73 + c.j * 1009 + c.k * 7919) as u64);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51AFD7ED558CCD);
            let a = (h & 0xFFFF) as f64 / 65535.0 * std::f64::consts::PI;
            let b = ((h >> 16) & 0xFFFF) as f64 / 65535.0 * std::f64::consts::TAU;
            [(Vec3::from_spherical(a, b), 0.6), (Vec3::ZERO, 0.0)]
        });
        let params = TrackingParams {
            step_length: step,
            angular_threshold: 0.5,
            max_steps: 200,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        };
        let pos = Vec3::new(
            sx * (nx - 1) as f64,
            sy * (ny - 1) as f64,
            sz * (nz - 1) as f64,
        );
        let mut w = Walker::new(0, pos, Vec3::from_spherical(theta, phi));
        while w.alive() {
            w.step(&f, &params, None);
            prop_assert!(dims.contains_point(w.pos.x, w.pos.y, w.pos.z),
                "walker escaped to {:?}", w.pos);
        }
        prop_assert!(w.steps <= params.max_steps);
    }

    #[test]
    fn walker_step_count_matches_distance(
        steps_wanted in 1u32..50,
        step in 0.1f64..0.5,
    ) {
        // In a uniform +x field with no curvature stops, distance traveled
        // is exactly steps × step_length.
        let dims = Dim3::new(64, 4, 4);
        let f = FnField::new(dims, |_| [(Vec3::X, 0.6), (Vec3::ZERO, 0.0)]);
        let params = TrackingParams {
            step_length: step,
            angular_threshold: 0.5,
            max_steps: steps_wanted,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        };
        let start = Vec3::new(0.0, 2.0, 2.0);
        let mut w = Walker::new(0, start, Vec3::X);
        while w.alive() {
            w.step(&f, &params, None);
        }
        prop_assert!((w.pos.x - start.x - w.steps as f64 * step).abs() < 1e-9);
    }

    #[test]
    fn path_voxels_sorted_unique_and_in_bounds(
        points in prop::collection::vec(
            (-2.0f64..12.0, -2.0f64..12.0, -2.0f64..12.0),
            0..100
        ),
    ) {
        let dims = Dim3::new(8, 8, 8);
        let path: Vec<Vec3> = points.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
        let voxels = ConnectivityAccumulator::voxels_of_path(dims, &path);
        for w in voxels.windows(2) {
            prop_assert!(w[0] < w[1], "not strictly sorted: {voxels:?}");
        }
        for &v in &voxels {
            prop_assert!((v as usize) < dims.len());
        }
    }

    #[test]
    fn connectivity_probability_bounded(
        paths in prop::collection::vec(
            prop::collection::vec((0.0f64..7.0, 0.0f64..7.0, 0.0f64..7.0), 1..20),
            1..30
        ),
    ) {
        let dims = Dim3::new(8, 8, 8);
        let mut acc = ConnectivityAccumulator::new(dims);
        for p in &paths {
            let pts: Vec<Vec3> = p.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
            acc.add_path(&pts);
        }
        prop_assert_eq!(acc.total_streamlines(), paths.len() as u64);
        for c in dims.iter() {
            let p = acc.probability(c);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn rectangle_model_waste_nonnegative_and_complete(
        loads in prop::collection::vec(1u32..200, 1..100),
        s in strategy_strategy(),
    ) {
        use tracto_stats::loadbalance::rectangle_model;
        let max = *loads.iter().max().unwrap();
        let m = rectangle_model(&loads, &s.budgets(max));
        prop_assert!(m.charged >= m.useful);
        // Every lane's full load is covered by the budgets.
        prop_assert_eq!(m.useful, loads.iter().map(|&l| l as u64).sum::<u64>());
    }
}
