//! Rician log-likelihood support.
//!
//! Magnitude MR measurements are Rician:
//!
//! ```text
//! p(y | μ, σ) = (y/σ²) · exp(−(y² + μ²)/(2σ²)) · I₀(y μ / σ²)
//! ```
//!
//! The Behrens framework (and the paper) uses the Gaussian approximation,
//! valid at SNR ≳ 3; this module provides the exact Rician alternative so
//! the likelihood mismatch can be measured (an ablation this repository
//! adds on top of the paper).

/// `ln I₀(x)` — the log modified Bessel function of the first kind, order
/// zero, computed with the Abramowitz–Stegun polynomial for `|x| < 3.75`
/// and the asymptotic expansion beyond (max relative error < 2e-7). The
/// log form stays finite for the large arguments (`y μ / σ² ~ 10³`) that
/// high-SNR voxels produce.
pub fn ln_bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (x / 3.75) * (x / 3.75);
        let i0 = 1.0
            + t * (3.5156229
                + t * (3.0899424
                    + t * (1.2067492 + t * (0.2659732 + t * (0.0360768 + t * 0.0045813)))));
        i0.ln()
    } else {
        let t = 3.75 / ax;
        let poly = 0.39894228
            + t * (0.01328592
                + t * (0.00225319
                    + t * (-0.00157565
                        + t * (0.00916281
                            + t * (-0.02057706
                                + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377)))))));
        ax - 0.5 * ax.ln() + poly.ln()
    }
}

/// Log-density of one Rician observation `y` with underlying amplitude `mu`
/// and channel noise `sigma`.
#[inline]
pub fn rician_log_pdf(y: f64, mu: f64, sigma: f64) -> f64 {
    if y <= 0.0 || sigma <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let s2 = sigma * sigma;
    y.ln() - s2.ln() - (y * y + mu * mu) / (2.0 * s2) + ln_bessel_i0(y * mu / s2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bessel_small_arguments() {
        // I0(0)=1, I0(1)=1.2660658…, I0(2)=2.2795853…
        assert!((ln_bessel_i0(0.0) - 0.0).abs() < 1e-7);
        assert!((ln_bessel_i0(1.0) - 1.2660658f64.ln()).abs() < 1e-6);
        assert!((ln_bessel_i0(2.0) - 2.2795853f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn bessel_large_arguments_finite_and_asymptotic() {
        // ln I0(x) → x − ln(2πx)/2 + ln(1 + 1/(8x) + 9/(128x²)) for large x.
        for x in [10.0f64, 100.0, 1000.0, 1e5] {
            let v = ln_bessel_i0(x);
            assert!(v.is_finite());
            let asym = x - 0.5 * (std::f64::consts::TAU * x).ln()
                + (1.0 + 1.0 / (8.0 * x) + 9.0 / (128.0 * x * x)).ln();
            assert!((v - asym).abs() / asym.abs() < 1e-4, "x={x}: {v} vs {asym}");
        }
    }

    #[test]
    fn bessel_continuous_at_switch() {
        let below = ln_bessel_i0(3.749_999);
        let above = ln_bessel_i0(3.750_001);
        assert!((below - above).abs() < 1e-4);
    }

    #[test]
    fn rician_pdf_integrates_to_one() {
        // Numerical integration over y for a couple of (μ, σ).
        for (mu, sigma) in [(0.0, 1.0), (3.0, 1.0), (10.0, 2.0)] {
            let dy = 0.005;
            let mut total = 0.0;
            let mut y = dy / 2.0;
            while y < mu + 12.0 * sigma {
                total += rician_log_pdf(y, mu, sigma).exp() * dy;
                y += dy;
            }
            assert!(
                (total - 1.0).abs() < 1e-3,
                "∫p={total} for μ={mu}, σ={sigma}"
            );
        }
    }

    #[test]
    fn rician_mode_near_mu_at_high_snr() {
        let (mu, sigma) = (50.0, 2.0);
        let p_at_mu = rician_log_pdf(mu + sigma * sigma / (2.0 * mu), mu, sigma);
        assert!(p_at_mu > rician_log_pdf(mu - 4.0 * sigma, mu, sigma));
        assert!(p_at_mu > rician_log_pdf(mu + 4.0 * sigma, mu, sigma));
    }

    #[test]
    fn rician_rejects_nonpositive() {
        assert_eq!(rician_log_pdf(0.0, 1.0, 1.0), f64::NEG_INFINITY);
        assert_eq!(rician_log_pdf(-1.0, 1.0, 1.0), f64::NEG_INFINITY);
        assert_eq!(rician_log_pdf(1.0, 1.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn gaussian_approximation_close_at_high_snr() {
        // At SNR 25 the Rician and shifted-Gaussian log densities agree to
        // within a few percent over the bulk.
        let (mu, sigma) = (100.0, 4.0);
        for dy in [-2.0, -1.0, 0.0, 1.0, 2.0] {
            let y: f64 = mu + dy * sigma;
            let rice = rician_log_pdf(y, mu, sigma);
            let gauss = -((y - mu) * (y - mu)) / (2.0 * sigma * sigma)
                - sigma.ln()
                - 0.5 * (std::f64::consts::TAU).ln();
            assert!(
                (rice - gauss).abs() < 0.05,
                "y={y}: rice {rice} gauss {gauss}"
            );
        }
    }
}
