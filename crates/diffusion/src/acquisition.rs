//! The DWI acquisition protocol: b-values and gradient directions.

use tracto_volume::Vec3;

/// The experimental parameters of a DWI scan: one `(b, ĝ)` pair per
/// measurement. These are the "known experimental parameters" of Section
/// III-A of the paper (gradient directions `r̂ᵢ` and b-values `bᵢ`).
#[derive(Debug, Clone, PartialEq)]
pub struct Acquisition {
    bvals: Vec<f64>,
    grads: Vec<Vec3>,
}

impl Acquisition {
    /// Build from parallel vectors of b-values and (unnormalized) gradient
    /// directions. Gradients of b>0 measurements are normalized; gradients of
    /// b=0 measurements are kept as given (conventionally zero).
    ///
    /// # Panics
    /// If the two vectors differ in length or are empty.
    pub fn new(bvals: Vec<f64>, grads: Vec<Vec3>) -> Self {
        assert_eq!(bvals.len(), grads.len(), "bvals and gradients must pair up");
        assert!(!bvals.is_empty(), "acquisition must contain measurements");
        let grads = bvals
            .iter()
            .zip(grads)
            .map(|(&b, g)| if b > 0.0 { g.normalized() } else { g })
            .collect();
        Acquisition { bvals, grads }
    }

    /// Number of measurements (the `n` of the 4-D input volume).
    #[inline]
    pub fn len(&self) -> usize {
        self.bvals.len()
    }

    /// True when there are no measurements (never for valid protocols).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bvals.is_empty()
    }

    /// b-value of measurement `i`.
    #[inline]
    pub fn bval(&self, i: usize) -> f64 {
        self.bvals[i]
    }

    /// Gradient direction of measurement `i` (unit for b>0).
    #[inline]
    pub fn grad(&self, i: usize) -> Vec3 {
        self.grads[i]
    }

    /// All b-values.
    #[inline]
    pub fn bvals(&self) -> &[f64] {
        &self.bvals
    }

    /// All gradient directions.
    #[inline]
    pub fn grads(&self) -> &[Vec3] {
        &self.grads
    }

    /// Indices of b=0 (non-diffusion-weighted) measurements.
    pub fn b0_indices(&self) -> Vec<usize> {
        self.bvals
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == 0.0).then_some(i))
            .collect()
    }

    /// Indices of diffusion-weighted (b>0) measurements.
    pub fn dwi_indices(&self) -> Vec<usize> {
        self.bvals
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b > 0.0).then_some(i))
            .collect()
    }

    /// Mean of the values at the b=0 indices of a signal vector — the `S₀`
    /// estimate used to initialize chains and normalize signals.
    pub fn mean_b0(&self, signal: &[f64]) -> f64 {
        let idx = self.b0_indices();
        if idx.is_empty() {
            return signal.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        }
        idx.iter().map(|&i| signal[i]).sum::<f64>() / idx.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protocol() -> Acquisition {
        Acquisition::new(
            vec![0.0, 1000.0, 1000.0, 0.0],
            vec![
                Vec3::ZERO,
                Vec3::new(2.0, 0.0, 0.0),
                Vec3::new(0.0, 3.0, 0.0),
                Vec3::ZERO,
            ],
        )
    }

    #[test]
    fn gradients_normalized_for_dwi_only() {
        let a = protocol();
        assert_eq!(a.grad(1), Vec3::X);
        assert_eq!(a.grad(2), Vec3::Y);
        assert_eq!(a.grad(0), Vec3::ZERO);
    }

    #[test]
    fn index_partitions() {
        let a = protocol();
        assert_eq!(a.b0_indices(), vec![0, 3]);
        assert_eq!(a.dwi_indices(), vec![1, 2]);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn mean_b0_averages_b0_samples() {
        let a = protocol();
        let s0 = a.mean_b0(&[100.0, 40.0, 50.0, 120.0]);
        assert_eq!(s0, 110.0);
    }

    #[test]
    fn mean_b0_without_b0_falls_back_to_max() {
        let a = Acquisition::new(vec![1000.0, 1000.0], vec![Vec3::X, Vec3::Y]);
        assert_eq!(a.mean_b0(&[10.0, 30.0]), 30.0);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_lengths_panic() {
        let _ = Acquisition::new(vec![0.0], vec![]);
    }
}
