//! Diffusion MRI signal models.
//!
//! Implements the three models of Table I of the paper — the **tensor**
//! model, the **constrained** model, and the **compartment** (single partial
//! volume / ball-and-one-stick) model — plus the **multiple partial volume**
//! model of Eq. 1 (ball-and-N-sticks, N = 2 in the paper and in FSL's
//! bedpostx), which is the model whose parameters the MCMC step estimates.
//!
//! Also provides:
//!
//! * [`Acquisition`] — the experimental protocol (b-values + gradient
//!   directions) shared by signal synthesis and estimation;
//! * [`tensor`] — diffusion-tensor algebra: analytic symmetric 3×3
//!   eigendecomposition, FA/MD, and log-linear least-squares tensor fitting
//!   (the classical deterministic-tractography front end, used both as a
//!   baseline and to initialize MCMC chains);
//! * [`posterior`] — the Bayesian machinery: parameter vector, priors, and
//!   the log-posterior evaluated by the Metropolis–Hastings sampler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acquisition;
pub mod linalg;
pub mod models;
pub mod posterior;
pub mod rician;
pub mod tensor;

pub use acquisition::Acquisition;
pub use models::{
    BallSticksModel, CompartmentModel, ConstrainedModel, DiffusionModel, TensorModel,
};
pub use posterior::{BallSticksParams, BallSticksPosterior, NoiseLikelihood, PriorConfig};
pub use tensor::{SymTensor3, TensorFit};
