//! The Bayesian posterior for the ball-and-two-sticks model.
//!
//! This is the distribution `P(ω | Y, M)` of Eq. 2 that the MCMC step
//! samples. Following the paper, `ω` holds **9 parameters**:
//!
//! ```text
//! ω = (S₀, d, σ, f₁, θ₁, φ₁, f₂, θ₂, φ₂)
//! ```
//!
//! where `σ` is the measurement noise level. The parameters of interest
//! are the subset `ω_I = (f₁, f₂, θ₁, θ₂, φ₁, φ₂)`; marginalizing over the
//! nuisance parameters `(S₀, d, σ)` happens automatically by sampling the
//! joint chain and discarding the nuisance coordinates.

use crate::models::ball_two_sticks_predict;
use crate::rician::rician_log_pdf;
use crate::tensor::TensorFit;
use crate::Acquisition;
use tracto_volume::Vec3;

/// Number of sampled parameters (the paper: "there are 9 parameters in ω").
pub const NUM_PARAMETERS: usize = 9;

/// Indices into the parameter array.
pub mod param_index {
    /// Baseline intensity S₀.
    pub const S0: usize = 0;
    /// Diffusivity d.
    pub const D: usize = 1;
    /// Noise standard deviation σ.
    pub const SIGMA: usize = 2;
    /// Volume fraction of stick 1.
    pub const F1: usize = 3;
    /// Polar angle of stick 1.
    pub const TH1: usize = 4;
    /// Azimuth of stick 1.
    pub const PH1: usize = 5;
    /// Volume fraction of stick 2.
    pub const F2: usize = 6;
    /// Polar angle of stick 2.
    pub const TH2: usize = 7;
    /// Azimuth of stick 2.
    pub const PH2: usize = 8;
}

/// The full parameter state of one voxel's chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BallSticksParams {
    /// Baseline intensity S₀ (> 0).
    pub s0: f64,
    /// Diffusivity d (> 0).
    pub d: f64,
    /// Noise standard deviation σ (> 0).
    pub sigma: f64,
    /// Stick-1 volume fraction f₁ ∈ [0, 1].
    pub f1: f64,
    /// Stick-1 polar angle θ₁.
    pub th1: f64,
    /// Stick-1 azimuth φ₁.
    pub ph1: f64,
    /// Stick-2 volume fraction f₂ ∈ [0, 1].
    pub f2: f64,
    /// Stick-2 polar angle θ₂.
    pub th2: f64,
    /// Stick-2 azimuth φ₂.
    pub ph2: f64,
}

impl BallSticksParams {
    /// Pack into a parameter array in [`param_index`] order.
    pub fn to_array(self) -> [f64; NUM_PARAMETERS] {
        [
            self.s0, self.d, self.sigma, self.f1, self.th1, self.ph1, self.f2, self.th2, self.ph2,
        ]
    }

    /// Unpack from a parameter array.
    pub fn from_array(a: [f64; NUM_PARAMETERS]) -> Self {
        BallSticksParams {
            s0: a[0],
            d: a[1],
            sigma: a[2],
            f1: a[3],
            th1: a[4],
            ph1: a[5],
            f2: a[6],
            th2: a[7],
            ph2: a[8],
        }
    }

    /// Unit direction of stick 1.
    #[inline]
    pub fn dir1(&self) -> Vec3 {
        Vec3::from_spherical(self.th1, self.ph1)
    }

    /// Unit direction of stick 2.
    #[inline]
    pub fn dir2(&self) -> Vec3 {
        Vec3::from_spherical(self.th2, self.ph2)
    }

    /// Return a copy with sticks ordered so that `f₁ ≥ f₂` — the reporting
    /// convention for sample volumes (stick 1 is the dominant population).
    pub fn sorted_by_fraction(self) -> Self {
        if self.f1 >= self.f2 {
            self
        } else {
            BallSticksParams {
                f1: self.f2,
                th1: self.th2,
                ph1: self.ph2,
                f2: self.f1,
                th2: self.th1,
                ph2: self.ph1,
                ..self
            }
        }
    }
}

/// Measurement-noise likelihood model.
///
/// The paper (following Behrens) uses the Gaussian likelihood; magnitude MR
/// data is actually Rician, which matters below SNR ≈ 3. Both are provided
/// so the approximation can be ablated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NoiseLikelihood {
    /// Gaussian observation noise (the paper's model).
    #[default]
    Gaussian,
    /// Exact Rician magnitude likelihood.
    Rician,
}

/// Prior configuration for the ball-and-two-sticks posterior.
#[derive(Debug, Clone, Copy)]
pub struct PriorConfig {
    /// Upper bound of the uniform prior on diffusivity.
    pub d_max: f64,
    /// Upper bound on the noise level (guards against divergent chains).
    pub sigma_max: f64,
    /// Optional shrinkage ("automatic relevance determination"-style) prior
    /// weight on the secondary fraction f₂: `p(f₂) ∝ (1 − f₂)^w`. `None`
    /// leaves f₂ uniform, as in the paper's base configuration.
    pub ard_weight: Option<f64>,
    /// Observation-noise model for the likelihood.
    pub likelihood: NoiseLikelihood,
    /// Number of stick compartments to estimate (1 or 2). The paper fixes
    /// N = 2 "to avoid over fitting"; N = 1 reduces to Table I's
    /// compartment model and is exposed for the model-selection ablation.
    pub max_sticks: u8,
}

impl Default for PriorConfig {
    fn default() -> Self {
        PriorConfig {
            d_max: 0.02,
            sigma_max: f64::INFINITY,
            ard_weight: None,
            likelihood: NoiseLikelihood::Gaussian,
            max_sticks: 2,
        }
    }
}

/// The log-posterior of the ball-and-two-sticks model for one voxel's data,
/// evaluated by the Metropolis–Hastings sampler.
#[derive(Debug, Clone)]
pub struct BallSticksPosterior<'a> {
    acq: &'a Acquisition,
    signal: &'a [f64],
    prior: PriorConfig,
}

impl<'a> BallSticksPosterior<'a> {
    /// Bind the posterior to a voxel's signal vector.
    ///
    /// # Panics
    /// If the signal length does not match the protocol.
    pub fn new(acq: &'a Acquisition, signal: &'a [f64], prior: PriorConfig) -> Self {
        assert_eq!(signal.len(), acq.len(), "signal length must match protocol");
        assert!(
            (1..=2).contains(&prior.max_sticks),
            "max_sticks must be 1 or 2"
        );
        BallSticksPosterior { acq, signal, prior }
    }

    /// The bound prior configuration.
    pub fn prior(&self) -> PriorConfig {
        self.prior
    }

    /// The acquisition protocol.
    pub fn acquisition(&self) -> &Acquisition {
        self.acq
    }

    /// The bound signal vector.
    pub fn signal(&self) -> &[f64] {
        self.signal
    }

    /// Log-prior. Returns `f64::NEG_INFINITY` outside the support, which is
    /// how the MH step rejects invalid proposals (as the paper's kernel does
    /// by zero prior probability).
    pub fn log_prior(&self, p: &BallSticksParams) -> f64 {
        if p.s0 <= 0.0
            || p.d <= 0.0
            || p.d > self.prior.d_max
            || p.sigma <= 0.0
            || p.sigma > self.prior.sigma_max
            || !(0.0..=1.0).contains(&p.f1)
            || !(0.0..=1.0).contains(&p.f2)
            || p.f1 + p.f2 > 1.0
        {
            return f64::NEG_INFINITY;
        }
        // Uniform-on-sphere prior on each stick direction: p(θ, φ) ∝ sin θ.
        let sin1 = p.th1.sin().abs();
        let sin2 = p.th2.sin().abs();
        if sin1 <= 0.0 || sin2 <= 0.0 {
            return f64::NEG_INFINITY;
        }
        // Jeffreys prior on the noise scale: p(σ) ∝ 1/σ.
        let mut lp = sin1.ln() + sin2.ln() - p.sigma.ln();
        if let Some(w) = self.prior.ard_weight {
            // Shrinkage prior on the secondary stick; pushes f₂ → 0 unless
            // the data support a second population.
            lp += w * (1.0 - p.f2).ln();
        }
        lp
    }

    /// Log-likelihood of the data under the model prediction, with the
    /// configured noise model (Gaussian, as in the paper, or exact Rician).
    pub fn log_likelihood(&self, p: &BallSticksParams) -> f64 {
        let dir1 = p.dir1();
        let dir2 = p.dir2();
        match self.prior.likelihood {
            NoiseLikelihood::Gaussian => {
                let inv_two_var = 0.5 / (p.sigma * p.sigma);
                let mut sse = 0.0;
                for (i, &y) in self.signal.iter().enumerate() {
                    let mu = ball_two_sticks_predict(
                        p.s0,
                        p.d,
                        p.f1,
                        p.f2,
                        dir1,
                        dir2,
                        self.acq.bval(i),
                        self.acq.grad(i),
                    );
                    let r = y - mu;
                    sse += r * r;
                }
                -(self.signal.len() as f64) * p.sigma.ln() - sse * inv_two_var
            }
            NoiseLikelihood::Rician => {
                let mut ll = 0.0;
                for (i, &y) in self.signal.iter().enumerate() {
                    let mu = ball_two_sticks_predict(
                        p.s0,
                        p.d,
                        p.f1,
                        p.f2,
                        dir1,
                        dir2,
                        self.acq.bval(i),
                        self.acq.grad(i),
                    );
                    ll += rician_log_pdf(y, mu, p.sigma);
                    if ll == f64::NEG_INFINITY {
                        return ll;
                    }
                }
                ll
            }
        }
    }

    /// Log-posterior (up to an additive constant).
    pub fn log_posterior(&self, p: &BallSticksParams) -> f64 {
        let lp = self.log_prior(p);
        if lp == f64::NEG_INFINITY {
            return lp;
        }
        lp + self.log_likelihood(p)
    }

    /// Initialize a chain from the classical tensor fit: mean diffusivity
    /// seeds `d`, fractional anisotropy seeds `f₁`, the principal
    /// eigenvector seeds `(θ₁, φ₁)`, and a residual estimate seeds `σ`.
    pub fn initial_params(&self) -> BallSticksParams {
        let fallback_s0 = self.acq.mean_b0(self.signal).max(1e-6);
        let (s0, d, f1, dir1) = match TensorFit::fit(self.acq, self.signal) {
            Some(fit) => {
                let md = fit
                    .tensor
                    .mean_diffusivity()
                    .clamp(1e-5 * self.prior.d_max, self.prior.d_max * 0.5);
                let fa = fit.tensor.fractional_anisotropy().clamp(0.05, 0.9);
                (fit.s0.max(1e-6), md, fa, fit.tensor.principal_direction())
            }
            None => (fallback_s0, self.prior.d_max * 0.1, 0.3, Vec3::Z),
        };
        let dir2 = dir1.any_orthogonal();
        let (th1, ph1) = dir1.to_spherical();
        let (th2, ph2) = dir2.to_spherical();
        // Residual-based noise estimate against the isotropic prediction.
        let mut sse = 0.0;
        for (i, &y) in self.signal.iter().enumerate() {
            let mu = s0 * (-self.acq.bval(i) * d).exp();
            sse += (y - mu) * (y - mu);
        }
        let sigma = (sse / self.signal.len() as f64).sqrt().max(1e-3 * s0).min(
            if self.prior.sigma_max.is_finite() {
                self.prior.sigma_max
            } else {
                f64::MAX
            },
        );
        BallSticksParams {
            s0,
            d,
            sigma,
            f1,
            th1: sanitize_theta(th1),
            ph1,
            f2: 0.05,
            th2: sanitize_theta(th2),
            ph2,
        }
    }
}

/// Keep θ away from the poles where the sin θ prior vanishes, so freshly
/// initialized chains never start at a zero-density point.
fn sanitize_theta(theta: f64) -> f64 {
    theta.clamp(1e-3, std::f64::consts::PI - 1e-3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{BallSticksModel, DiffusionModel};

    fn test_acq() -> Acquisition {
        // 12 directions + 2 b0 — enough for a tensor fit.
        let dirs = [
            (1.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (0.0, 0.0, 1.0),
            (1.0, 1.0, 0.0),
            (1.0, -1.0, 0.0),
            (1.0, 0.0, 1.0),
            (1.0, 0.0, -1.0),
            (0.0, 1.0, 1.0),
            (0.0, 1.0, -1.0),
            (1.0, 1.0, 1.0),
            (-1.0, 1.0, 1.0),
            (1.0, -1.0, 1.0),
        ];
        let mut bvals = vec![0.0, 0.0];
        let mut grads = vec![Vec3::ZERO, Vec3::ZERO];
        for (x, y, z) in dirs {
            bvals.push(1000.0);
            grads.push(Vec3::new(x, y, z));
        }
        Acquisition::new(bvals, grads)
    }

    fn default_params() -> BallSticksParams {
        BallSticksParams {
            s0: 100.0,
            d: 1.5e-3,
            sigma: 2.0,
            f1: 0.5,
            th1: 1.0,
            ph1: 0.3,
            f2: 0.2,
            th2: 2.0,
            ph2: -1.0,
        }
    }

    #[test]
    fn array_roundtrip() {
        let p = default_params();
        assert_eq!(BallSticksParams::from_array(p.to_array()), p);
    }

    #[test]
    fn sorted_by_fraction_swaps_sticks() {
        let mut p = default_params();
        p.f1 = 0.1;
        p.f2 = 0.4;
        let s = p.sorted_by_fraction();
        assert_eq!(s.f1, 0.4);
        assert_eq!(s.f2, 0.1);
        assert_eq!(s.th1, p.th2);
        assert_eq!(s.ph2, p.ph1);
        assert_eq!(s.s0, p.s0);
    }

    #[test]
    fn prior_rejects_out_of_support() {
        let acq = test_acq();
        let signal = vec![100.0; acq.len()];
        let post = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
        let good = default_params();
        assert!(post.log_prior(&good).is_finite());
        for mutate in [
            |p: &mut BallSticksParams| p.s0 = -1.0,
            |p: &mut BallSticksParams| p.d = -1e-3,
            |p: &mut BallSticksParams| p.d = 1.0,
            |p: &mut BallSticksParams| p.sigma = 0.0,
            |p: &mut BallSticksParams| p.f1 = -0.1,
            |p: &mut BallSticksParams| p.f2 = 1.1,
            |p: &mut BallSticksParams| {
                p.f1 = 0.7;
                p.f2 = 0.7;
            },
            |p: &mut BallSticksParams| p.th1 = 0.0,
        ] {
            let mut p = default_params();
            mutate(&mut p);
            assert_eq!(post.log_prior(&p), f64::NEG_INFINITY, "{p:?}");
        }
    }

    #[test]
    fn likelihood_peaks_at_truth() {
        let acq = test_acq();
        let truth = default_params();
        let model = BallSticksModel::new(
            truth.s0,
            truth.d,
            vec![truth.f1, truth.f2],
            vec![truth.dir1(), truth.dir2()],
        );
        let signal = model.predict_protocol(&acq);
        let post = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
        let ll_truth = post.log_likelihood(&truth);
        // Perturbations reduce the likelihood.
        for mutate in [
            |p: &mut BallSticksParams| p.s0 *= 1.2,
            |p: &mut BallSticksParams| p.d *= 2.0,
            |p: &mut BallSticksParams| p.f1 = (p.f1 + 0.3).min(0.79),
            |p: &mut BallSticksParams| p.th1 += 0.5,
        ] {
            let mut p = truth;
            mutate(&mut p);
            assert!(
                post.log_likelihood(&p) < ll_truth,
                "perturbed {p:?} should be less likely"
            );
        }
    }

    #[test]
    fn posterior_is_prior_plus_likelihood() {
        let acq = test_acq();
        let signal = vec![90.0; acq.len()];
        let post = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
        let p = default_params();
        let expected = post.log_prior(&p) + post.log_likelihood(&p);
        assert!((post.log_posterior(&p) - expected).abs() < 1e-12);
    }

    #[test]
    fn posterior_neg_inf_short_circuits() {
        let acq = test_acq();
        let signal = vec![90.0; acq.len()];
        let post = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
        let mut p = default_params();
        p.f1 = 2.0;
        assert_eq!(post.log_posterior(&p), f64::NEG_INFINITY);
    }

    #[test]
    fn ard_prior_penalizes_large_f2() {
        let acq = test_acq();
        let signal = vec![90.0; acq.len()];
        let prior = PriorConfig {
            ard_weight: Some(5.0),
            ..Default::default()
        };
        let post = BallSticksPosterior::new(&acq, &signal, prior);
        let mut small = default_params();
        small.f2 = 0.01;
        let mut large = default_params();
        large.f2 = 0.5;
        // Same parameters except f2; ARD must favor the smaller f2 via the
        // prior term specifically.
        let no_ard = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
        let delta_ard = post.log_prior(&large) - post.log_prior(&small);
        let delta_flat = no_ard.log_prior(&large) - no_ard.log_prior(&small);
        assert!(delta_ard < delta_flat);
    }

    #[test]
    fn initial_params_valid_and_informed() {
        let acq = test_acq();
        let truth_dir = Vec3::new(1.0, 0.5, 0.2).normalized();
        let model = BallSticksModel::new(120.0, 1.4e-3, vec![0.6], vec![truth_dir]);
        let signal = model.predict_protocol(&acq);
        let post = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
        let init = post.initial_params();
        assert!(
            post.log_prior(&init).is_finite(),
            "init must be in the prior support"
        );
        // The initial stick-1 direction should be within ~30° of the truth.
        assert!(
            init.dir1().dot(truth_dir).abs() > 0.85,
            "init dir {:?}",
            init.dir1()
        );
        assert!((init.s0 - 120.0).abs() / 120.0 < 0.2);
    }

    #[test]
    fn initial_params_fallback_without_tensor_fit() {
        // 2-measurement protocol cannot be tensor-fitted.
        let acq = Acquisition::new(vec![0.0, 1000.0], vec![Vec3::ZERO, Vec3::X]);
        let signal = vec![100.0, 60.0];
        let post = BallSticksPosterior::new(&acq, &signal, PriorConfig::default());
        let init = post.initial_params();
        assert!(post.log_prior(&init).is_finite());
    }

    #[test]
    fn num_parameters_is_nine() {
        assert_eq!(NUM_PARAMETERS, 9);
        assert_eq!(default_params().to_array().len(), 9);
    }
}
