//! The diffusion signal models of Table I and Eq. 1.
//!
//! Every model predicts the voxel intensity `μᵢ` of measurement `i` from the
//! experimental parameters `(bᵢ, r̂ᵢ)`:
//!
//! | Model | Prediction |
//! |---|---|
//! | Tensor | `μᵢ = S₀ · exp(−bᵢ r̂ᵢᵀ D r̂ᵢ)` |
//! | Constrained | `μᵢ = S₀ · exp(−α bᵢ) · exp(−β bᵢ (r̂ᵢᵀ v̂)²)` |
//! | Compartment | `μᵢ = S₀ [(1−f) e^(−bᵢ d) + f e^(−bᵢ d (r̂ᵢᵀ v̂)²)]` |
//! | Multiple partial volume (Eq. 1) | `μᵢ = S₀ [(1−Σfⱼ) e^(−bᵢ d) + Σⱼ fⱼ e^(−bᵢ d (r̂ᵢᵀ v̂ⱼ)²)]` |
//!
//! The paper (and this reproduction) estimates the multiple-partial-volume
//! model with `N = 2` sticks to avoid overfitting, as in FSL.

use crate::tensor::SymTensor3;
use crate::Acquisition;
use tracto_volume::Vec3;

/// A diffusion model that predicts the signal of one measurement.
pub trait DiffusionModel {
    /// Predicted intensity `μᵢ` for b-value `b` and gradient direction `g`.
    fn predict(&self, b: f64, g: Vec3) -> f64;

    /// Predict the full signal vector for an acquisition protocol.
    fn predict_protocol(&self, acq: &Acquisition) -> Vec<f64> {
        (0..acq.len())
            .map(|i| self.predict(acq.bval(i), acq.grad(i)))
            .collect()
    }
}

/// The full tensor model (row 1 of Table I).
#[derive(Debug, Clone, Copy)]
pub struct TensorModel {
    /// Baseline intensity.
    pub s0: f64,
    /// The diffusion tensor.
    pub tensor: SymTensor3,
}

impl DiffusionModel for TensorModel {
    #[inline]
    fn predict(&self, b: f64, g: Vec3) -> f64 {
        self.s0 * (-b * self.tensor.quadratic_form(g)).exp()
    }
}

/// The constrained model (row 2 of Table I): isotropic attenuation `α` plus
/// an anisotropic term `β` along a single fiber direction.
#[derive(Debug, Clone, Copy)]
pub struct ConstrainedModel {
    /// Baseline intensity.
    pub s0: f64,
    /// Isotropic attenuation coefficient.
    pub alpha: f64,
    /// Anisotropic attenuation coefficient.
    pub beta: f64,
    /// Unit fiber direction.
    pub dir: Vec3,
}

impl DiffusionModel for ConstrainedModel {
    #[inline]
    fn predict(&self, b: f64, g: Vec3) -> f64 {
        let proj = g.dot(self.dir);
        self.s0 * (-self.alpha * b).exp() * (-self.beta * b * proj * proj).exp()
    }
}

/// The compartment / single-partial-volume ("ball and one stick") model
/// (row 3 of Table I).
#[derive(Debug, Clone, Copy)]
pub struct CompartmentModel {
    /// Baseline intensity.
    pub s0: f64,
    /// Volume fraction of the stick compartment, in `[0, 1]`.
    pub f: f64,
    /// Diffusivity.
    pub d: f64,
    /// Unit fiber direction.
    pub dir: Vec3,
}

impl DiffusionModel for CompartmentModel {
    #[inline]
    fn predict(&self, b: f64, g: Vec3) -> f64 {
        let proj = g.dot(self.dir);
        self.s0
            * ((1.0 - self.f) * (-b * self.d).exp() + self.f * (-b * self.d * proj * proj).exp())
    }
}

/// The multiple-partial-volume ("ball and N sticks") model of Eq. 1; the
/// model estimated by MCMC, with `N = 2` in the paper.
#[derive(Debug, Clone)]
pub struct BallSticksModel {
    /// Baseline intensity.
    pub s0: f64,
    /// Diffusivity shared by ball and sticks.
    pub d: f64,
    /// Per-stick volume fractions; `Σ fⱼ ≤ 1`.
    pub fractions: Vec<f64>,
    /// Per-stick unit directions, parallel to `fractions`.
    pub dirs: Vec<Vec3>,
}

impl BallSticksModel {
    /// Build a ball-and-N-sticks model.
    ///
    /// # Panics
    /// If `fractions` and `dirs` differ in length or `Σ fⱼ > 1 + ε`.
    pub fn new(s0: f64, d: f64, fractions: Vec<f64>, dirs: Vec<Vec3>) -> Self {
        assert_eq!(fractions.len(), dirs.len(), "one direction per fraction");
        let total: f64 = fractions.iter().sum();
        assert!(total <= 1.0 + 1e-9, "volume fractions sum to {total} > 1");
        let dirs = dirs.into_iter().map(Vec3::normalized).collect();
        BallSticksModel {
            s0,
            d,
            fractions,
            dirs,
        }
    }

    /// Number of stick compartments.
    pub fn num_sticks(&self) -> usize {
        self.fractions.len()
    }

    /// Isotropic (ball) volume fraction `1 − Σ fⱼ`.
    pub fn ball_fraction(&self) -> f64 {
        1.0 - self.fractions.iter().sum::<f64>()
    }
}

impl DiffusionModel for BallSticksModel {
    #[inline]
    fn predict(&self, b: f64, g: Vec3) -> f64 {
        let ball = self.ball_fraction() * (-b * self.d).exp();
        let sticks: f64 = self
            .fractions
            .iter()
            .zip(&self.dirs)
            .map(|(f, v)| {
                let proj = g.dot(*v);
                f * (-b * self.d * proj * proj).exp()
            })
            .sum();
        self.s0 * (ball + sticks)
    }
}

/// Evaluate the ball-and-two-sticks prediction from raw parameters without
/// allocating a model — the hot path inside the MH likelihood, mirroring the
/// arithmetic of the GPU kernel.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the GPU kernel's flat signature
pub fn ball_two_sticks_predict(
    s0: f64,
    d: f64,
    f1: f64,
    f2: f64,
    dir1: Vec3,
    dir2: Vec3,
    b: f64,
    g: Vec3,
) -> f64 {
    let p1 = g.dot(dir1);
    let p2 = g.dot(dir2);
    let iso = (-b * d).exp();
    s0 * ((1.0 - f1 - f2) * iso + f1 * (-b * d * p1 * p1).exp() + f2 * (-b * d * p2 * p2).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_acq() -> Acquisition {
        Acquisition::new(
            vec![0.0, 1000.0, 1000.0, 1000.0],
            vec![Vec3::ZERO, Vec3::X, Vec3::Y, Vec3::Z],
        )
    }

    #[test]
    fn all_models_reduce_to_s0_at_b0() {
        let s0 = 750.0;
        let models: Vec<Box<dyn DiffusionModel>> = vec![
            Box::new(TensorModel {
                s0,
                tensor: SymTensor3::isotropic(1e-3),
            }),
            Box::new(ConstrainedModel {
                s0,
                alpha: 1e-3,
                beta: 2e-3,
                dir: Vec3::Z,
            }),
            Box::new(CompartmentModel {
                s0,
                f: 0.5,
                d: 1e-3,
                dir: Vec3::Z,
            }),
            Box::new(BallSticksModel::new(
                s0,
                1e-3,
                vec![0.4, 0.3],
                vec![Vec3::X, Vec3::Y],
            )),
        ];
        for m in &models {
            assert!((m.predict(0.0, Vec3::ZERO) - s0).abs() < 1e-9);
        }
    }

    #[test]
    fn compartment_attenuates_most_along_fiber() {
        let m = CompartmentModel {
            s0: 1.0,
            f: 0.8,
            d: 1.5e-3,
            dir: Vec3::Z,
        };
        let along = m.predict(1000.0, Vec3::Z);
        let across = m.predict(1000.0, Vec3::X);
        assert!(along < across, "signal along the fiber must attenuate more");
    }

    #[test]
    fn compartment_zero_f_is_isotropic() {
        let m = CompartmentModel {
            s0: 1.0,
            f: 0.0,
            d: 1e-3,
            dir: Vec3::Z,
        };
        let a = m.predict(1000.0, Vec3::X);
        let b = m.predict(1000.0, Vec3::Z);
        assert!((a - b).abs() < 1e-12);
        assert!((a - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn ball_sticks_matches_compartment_for_one_stick() {
        let c = CompartmentModel {
            s0: 2.0,
            f: 0.6,
            d: 1.2e-3,
            dir: Vec3::Y,
        };
        let bs = BallSticksModel::new(2.0, 1.2e-3, vec![0.6], vec![Vec3::Y]);
        let acq = test_acq();
        for i in 0..acq.len() {
            let (b, g) = (acq.bval(i), acq.grad(i));
            assert!((c.predict(b, g) - bs.predict(b, g)).abs() < 1e-12);
        }
    }

    #[test]
    fn ball_two_sticks_predict_matches_model() {
        let dir1 = Vec3::new(1.0, 1.0, 0.0).normalized();
        let dir2 = Vec3::new(0.0, 1.0, -1.0).normalized();
        let m = BallSticksModel::new(500.0, 1.7e-3, vec![0.35, 0.25], vec![dir1, dir2]);
        let acq = test_acq();
        for i in 0..acq.len() {
            let (b, g) = (acq.bval(i), acq.grad(i));
            let fast = ball_two_sticks_predict(500.0, 1.7e-3, 0.35, 0.25, dir1, dir2, b, g);
            assert!((m.predict(b, g) - fast).abs() < 1e-12);
        }
    }

    #[test]
    fn crossing_signature_two_attenuation_minima() {
        // A two-stick voxel attenuates strongly along both stick axes and
        // weakly along the orthogonal axis.
        let m = BallSticksModel::new(1.0, 1.5e-3, vec![0.45, 0.45], vec![Vec3::X, Vec3::Y]);
        let sx = m.predict(1500.0, Vec3::X);
        let sy = m.predict(1500.0, Vec3::Y);
        let sz = m.predict(1500.0, Vec3::Z);
        assert!(sx < sz && sy < sz);
        assert!(
            (sx - sy).abs() < 1e-12,
            "symmetric sticks attenuate equally"
        );
    }

    #[test]
    fn constrained_model_anisotropy() {
        let m = ConstrainedModel {
            s0: 1.0,
            alpha: 0.5e-3,
            beta: 1.0e-3,
            dir: Vec3::X,
        };
        assert!(m.predict(1000.0, Vec3::X) < m.predict(1000.0, Vec3::Y));
    }

    #[test]
    fn predict_protocol_length() {
        let m = TensorModel {
            s0: 1.0,
            tensor: SymTensor3::isotropic(1e-3),
        };
        assert_eq!(m.predict_protocol(&test_acq()).len(), 4);
    }

    #[test]
    #[should_panic(expected = "volume fractions")]
    fn fractions_over_one_rejected() {
        let _ = BallSticksModel::new(1.0, 1e-3, vec![0.7, 0.6], vec![Vec3::X, Vec3::Y]);
    }

    #[test]
    fn directions_normalized_on_construction() {
        let m = BallSticksModel::new(1.0, 1e-3, vec![0.5], vec![Vec3::new(0.0, 0.0, 4.0)]);
        assert!((m.dirs[0].norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn signal_monotone_in_bvalue() {
        let m = BallSticksModel::new(1.0, 1e-3, vec![0.5], vec![Vec3::Z]);
        let g = Vec3::new(1.0, 0.0, 1.0).normalized();
        let s1 = m.predict(500.0, g);
        let s2 = m.predict(1000.0, g);
        let s3 = m.predict(2000.0, g);
        assert!(s1 > s2 && s2 > s3, "attenuation grows with b");
    }
}
