//! Tiny dense linear algebra: just enough to solve the normal equations of
//! the log-linear tensor fit (7 unknowns) without an external dependency.

/// Solve `A x = b` for a small dense system by Gaussian elimination with
/// partial pivoting. `a` is row-major `n×n`. Returns `None` when the matrix
/// is (numerically) singular.
pub fn solve_dense(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: find the largest magnitude in this column.
        let mut pivot_row = col;
        let mut pivot_val = m[col * n + col].abs();
        for row in (col + 1)..n {
            let v = m[row * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Some(x)
}

/// Solve the least-squares problem `min ‖D x − y‖²` via the normal equations
/// `DᵀD x = Dᵀ y`. `design` is row-major `rows×cols`.
pub fn least_squares(design: &[f64], y: &[f64], rows: usize, cols: usize) -> Option<Vec<f64>> {
    assert_eq!(design.len(), rows * cols);
    assert_eq!(y.len(), rows);
    let mut ata = vec![0.0; cols * cols];
    let mut aty = vec![0.0; cols];
    for r in 0..rows {
        let row = &design[r * cols..(r + 1) * cols];
        for i in 0..cols {
            aty[i] += row[i] * y[r];
            for j in i..cols {
                ata[i * cols + j] += row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..cols {
        for j in 0..i {
            ata[i * cols + j] = ata[j * cols + i];
        }
    }
    solve_dense(&ata, &aty, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let x = solve_dense(&a, &[3.0, 4.0], 2).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let x = solve_dense(&a, &[5.0, 7.0], 2).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn solve_3x3_known_solution() {
        // A x = b with x = (1, -2, 3).
        let a = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let x_true = [1.0, -2.0, 3.0];
        let mut b = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += a[i * 3 + j] * x_true[j];
            }
        }
        let x = solve_dense(&a, &b, 3).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_returns_none() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn least_squares_exact_fit() {
        // y = 2 x0 + 3 x1 sampled without noise must be recovered exactly.
        let design = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0];
        let y = [2.0, 3.0, 5.0, 1.0];
        let x = least_squares(&design, &y, 4, 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_noise() {
        // Regression through noisy samples of y = 1 + 2 t.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let noise = [0.01, -0.02, 0.015, -0.005, 0.0];
        let mut design = Vec::new();
        let mut y = Vec::new();
        for (t, n) in ts.iter().zip(noise.iter()) {
            design.extend_from_slice(&[1.0, *t]);
            y.push(1.0 + 2.0 * t + n);
        }
        let x = least_squares(&design, &y, 5, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 0.03);
        assert!((x[1] - 2.0).abs() < 0.02);
    }
}
