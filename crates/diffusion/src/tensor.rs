//! Diffusion-tensor algebra and the classical log-linear tensor fit.
//!
//! The tensor model (first row of Table I) underlies deterministic
//! streamlining: the principal eigenvector of the fitted tensor is the
//! stepping direction. It also initializes the MCMC chains: mean
//! diffusivity seeds `d`, fractional anisotropy seeds `f₁`, and the
//! principal direction seeds `(θ₁, φ₁)`.

use crate::linalg::least_squares;
use crate::Acquisition;
use tracto_volume::Vec3;

/// A symmetric 3×3 tensor stored as its six unique components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SymTensor3 {
    /// xx component.
    pub dxx: f64,
    /// xy component.
    pub dxy: f64,
    /// xz component.
    pub dxz: f64,
    /// yy component.
    pub dyy: f64,
    /// yz component.
    pub dyz: f64,
    /// zz component.
    pub dzz: f64,
}

impl SymTensor3 {
    /// An isotropic tensor `d · I`.
    pub fn isotropic(d: f64) -> Self {
        SymTensor3 {
            dxx: d,
            dyy: d,
            dzz: d,
            ..Default::default()
        }
    }

    /// Build an axially symmetric (cylindrical) tensor with axial
    /// diffusivity `lambda_par` along unit `axis` and radial diffusivity
    /// `lambda_perp`: `D = λ⊥ I + (λ∥ − λ⊥) v vᵀ`.
    pub fn cylindrical(axis: Vec3, lambda_par: f64, lambda_perp: f64) -> Self {
        let v = axis.normalized();
        let d = lambda_par - lambda_perp;
        SymTensor3 {
            dxx: lambda_perp + d * v.x * v.x,
            dxy: d * v.x * v.y,
            dxz: d * v.x * v.z,
            dyy: lambda_perp + d * v.y * v.y,
            dyz: d * v.y * v.z,
            dzz: lambda_perp + d * v.z * v.z,
        }
    }

    /// The quadratic form `r̂ᵀ D r̂`.
    #[inline]
    pub fn quadratic_form(&self, r: Vec3) -> f64 {
        r.x * r.x * self.dxx
            + r.y * r.y * self.dyy
            + r.z * r.z * self.dzz
            + 2.0 * (r.x * r.y * self.dxy + r.x * r.z * self.dxz + r.y * r.z * self.dyz)
    }

    /// Matrix-vector product `D r`.
    #[inline]
    pub fn mul_vec(&self, r: Vec3) -> Vec3 {
        Vec3::new(
            self.dxx * r.x + self.dxy * r.y + self.dxz * r.z,
            self.dxy * r.x + self.dyy * r.y + self.dyz * r.z,
            self.dxz * r.x + self.dyz * r.y + self.dzz * r.z,
        )
    }

    /// Trace.
    #[inline]
    pub fn trace(&self) -> f64 {
        self.dxx + self.dyy + self.dzz
    }

    /// Mean diffusivity (trace / 3).
    #[inline]
    pub fn mean_diffusivity(&self) -> f64 {
        self.trace() / 3.0
    }

    /// Eigenvalues sorted descending, by the analytic trigonometric method
    /// for symmetric 3×3 matrices (Smith 1961). Robust for the
    /// positive-semidefinite tensors encountered here.
    pub fn eigenvalues(&self) -> [f64; 3] {
        let p1 = self.dxy * self.dxy + self.dxz * self.dxz + self.dyz * self.dyz;
        if p1 < 1e-300 {
            // Diagonal matrix.
            let mut e = [self.dxx, self.dyy, self.dzz];
            e.sort_by(|a, b| b.partial_cmp(a).expect("finite eigenvalues"));
            return e;
        }
        let q = self.mean_diffusivity();
        let dx = self.dxx - q;
        let dy = self.dyy - q;
        let dz = self.dzz - q;
        let p2 = dx * dx + dy * dy + dz * dz + 2.0 * p1;
        let p = (p2 / 6.0).sqrt();
        // B = (A − q I) / p ; r = det(B) / 2 ∈ [−1, 1].
        let b = SymTensor3 {
            dxx: dx / p,
            dxy: self.dxy / p,
            dxz: self.dxz / p,
            dyy: dy / p,
            dyz: self.dyz / p,
            dzz: dz / p,
        };
        let det_b = b.dxx * (b.dyy * b.dzz - b.dyz * b.dyz)
            - b.dxy * (b.dxy * b.dzz - b.dyz * b.dxz)
            + b.dxz * (b.dxy * b.dyz - b.dyy * b.dxz);
        let r = (det_b / 2.0).clamp(-1.0, 1.0);
        let phi = r.acos() / 3.0;
        let e1 = q + 2.0 * p * phi.cos();
        let e3 = q + 2.0 * p * (phi + 2.0 * std::f64::consts::PI / 3.0).cos();
        let e2 = 3.0 * q - e1 - e3;
        let mut e = [e1, e2, e3];
        e.sort_by(|a, b| b.partial_cmp(a).expect("finite eigenvalues"));
        e
    }

    /// Eigenvector for a given eigenvalue (unit length). Uses the largest
    /// cross product of rows of `A − λI`, which is numerically stable for
    /// well-separated eigenvalues; for (near-)degenerate eigenvalues an
    /// arbitrary valid eigenvector is returned.
    pub fn eigenvector(&self, lambda: f64) -> Vec3 {
        let r0 = Vec3::new(self.dxx - lambda, self.dxy, self.dxz);
        let r1 = Vec3::new(self.dxy, self.dyy - lambda, self.dyz);
        let r2 = Vec3::new(self.dxz, self.dyz, self.dzz - lambda);
        let c0 = r0.cross(r1);
        let c1 = r0.cross(r2);
        let c2 = r1.cross(r2);
        let (mut best, mut best_norm) = (c0, c0.norm_sq());
        if c1.norm_sq() > best_norm {
            best = c1;
            best_norm = c1.norm_sq();
        }
        if c2.norm_sq() > best_norm {
            best = c2;
            best_norm = c2.norm_sq();
        }
        if best_norm < 1e-24 {
            // Degenerate (isotropic) case: any unit vector is an eigenvector.
            return Vec3::Z;
        }
        best.normalized()
    }

    /// Principal diffusion direction: the eigenvector of the largest
    /// eigenvalue.
    pub fn principal_direction(&self) -> Vec3 {
        self.eigenvector(self.eigenvalues()[0])
    }

    /// Fractional anisotropy in `[0, 1]`.
    pub fn fractional_anisotropy(&self) -> f64 {
        let [l1, l2, l3] = self.eigenvalues();
        let m = (l1 + l2 + l3) / 3.0;
        let num = (l1 - m).powi(2) + (l2 - m).powi(2) + (l3 - m).powi(2);
        let den = l1 * l1 + l2 * l2 + l3 * l3;
        if den <= 0.0 {
            return 0.0;
        }
        ((1.5 * num / den).sqrt()).clamp(0.0, 1.0)
    }
}

/// Result of the log-linear least-squares tensor fit.
#[derive(Debug, Clone, Copy)]
pub struct TensorFit {
    /// The fitted tensor.
    pub tensor: SymTensor3,
    /// The fitted non-diffusion-weighted intensity `S₀`.
    pub s0: f64,
}

impl TensorFit {
    /// Fit the tensor model `Sᵢ = S₀ exp(−bᵢ r̂ᵢᵀ D r̂ᵢ)` to a signal vector
    /// by linear least squares on `ln Sᵢ`.
    ///
    /// Returns `None` when the protocol has fewer than 7 usable measurements
    /// or the design is singular (e.g. gradients confined to a plane).
    /// Non-positive signal values are clamped to a small positive floor
    /// before the log, as is standard.
    pub fn fit(acq: &Acquisition, signal: &[f64]) -> Option<TensorFit> {
        assert_eq!(signal.len(), acq.len(), "signal length must match protocol");
        let n = acq.len();
        if n < 7 {
            return None;
        }
        let floor = signal.iter().copied().fold(f64::NEG_INFINITY, f64::max) * 1e-6;
        let floor = floor.max(1e-12);
        let mut design = Vec::with_capacity(n * 7);
        let mut y = Vec::with_capacity(n);
        for (i, &s) in signal.iter().enumerate() {
            let b = acq.bval(i);
            let g = acq.grad(i);
            design.extend_from_slice(&[
                1.0,
                -b * g.x * g.x,
                -2.0 * b * g.x * g.y,
                -2.0 * b * g.x * g.z,
                -b * g.y * g.y,
                -2.0 * b * g.y * g.z,
                -b * g.z * g.z,
            ]);
            y.push(s.max(floor).ln());
        }
        let x = least_squares(&design, &y, n, 7)?;
        Some(TensorFit {
            s0: x[0].exp(),
            tensor: SymTensor3 {
                dxx: x[1],
                dxy: x[2],
                dxz: x[3],
                dyy: x[4],
                dyz: x[5],
                dzz: x[6],
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn six_dir_protocol() -> Acquisition {
        // Classic 6-direction scheme + one b=0.
        let dirs = vec![
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, -1.0),
            Vec3::new(0.0, 1.0, 1.0),
            Vec3::new(0.0, 1.0, -1.0),
        ];
        let mut bvals = vec![0.0];
        let mut grads = vec![Vec3::ZERO];
        for d in dirs {
            bvals.push(1000.0);
            grads.push(d);
        }
        Acquisition::new(bvals, grads)
    }

    #[test]
    fn isotropic_eigen() {
        let t = SymTensor3::isotropic(2.0e-3);
        let e = t.eigenvalues();
        for v in e {
            assert!((v - 2.0e-3).abs() < 1e-12);
        }
        assert!(t.fractional_anisotropy() < 1e-9);
    }

    #[test]
    fn cylindrical_eigenstructure() {
        let axis = Vec3::new(1.0, 2.0, -1.0).normalized();
        let t = SymTensor3::cylindrical(axis, 1.7e-3, 0.3e-3);
        let e = t.eigenvalues();
        assert!((e[0] - 1.7e-3).abs() < 1e-9);
        assert!((e[1] - 0.3e-3).abs() < 1e-9);
        assert!((e[2] - 0.3e-3).abs() < 1e-9);
        let v = t.principal_direction();
        assert!(
            v.dot(axis).abs() > 1.0 - 1e-9,
            "principal direction mismatch"
        );
    }

    #[test]
    fn quadratic_form_matches_mul_vec() {
        let t = SymTensor3 {
            dxx: 1.0,
            dxy: 0.2,
            dxz: -0.1,
            dyy: 0.8,
            dyz: 0.05,
            dzz: 1.2,
        };
        let r = Vec3::new(0.3, -0.5, 0.8);
        assert!((t.quadratic_form(r) - r.dot(t.mul_vec(r))).abs() < 1e-12);
    }

    #[test]
    fn eigenvalues_sum_to_trace() {
        let t = SymTensor3 {
            dxx: 1.3,
            dxy: 0.4,
            dxz: 0.1,
            dyy: 0.9,
            dyz: -0.2,
            dzz: 0.6,
        };
        let e = t.eigenvalues();
        assert!((e[0] + e[1] + e[2] - t.trace()).abs() < 1e-9);
        assert!(e[0] >= e[1] && e[1] >= e[2]);
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let t = SymTensor3 {
            dxx: 2.0,
            dxy: 0.5,
            dxz: 0.0,
            dyy: 1.0,
            dyz: 0.25,
            dzz: 0.75,
        };
        for lambda in t.eigenvalues() {
            let v = t.eigenvector(lambda);
            let residual = t.mul_vec(v) - v * lambda;
            assert!(
                residual.norm() < 1e-8,
                "residual {} for λ={lambda}",
                residual.norm()
            );
        }
    }

    #[test]
    fn fa_of_stick_near_one() {
        let t = SymTensor3::cylindrical(Vec3::Z, 1.0e-3, 1.0e-6);
        assert!(t.fractional_anisotropy() > 0.99);
    }

    #[test]
    fn fit_recovers_known_tensor() {
        let acq = six_dir_protocol();
        let truth = SymTensor3::cylindrical(Vec3::new(1.0, 1.0, 1.0), 1.5e-3, 0.4e-3);
        let s0 = 800.0;
        let signal: Vec<f64> = (0..acq.len())
            .map(|i| s0 * (-acq.bval(i) * truth.quadratic_form(acq.grad(i))).exp())
            .collect();
        let fit = TensorFit::fit(&acq, &signal).unwrap();
        assert!((fit.s0 - s0).abs() / s0 < 1e-6);
        assert!((fit.tensor.dxx - truth.dxx).abs() < 1e-9);
        assert!((fit.tensor.dxy - truth.dxy).abs() < 1e-9);
        assert!((fit.tensor.dzz - truth.dzz).abs() < 1e-9);
        let v = fit.tensor.principal_direction();
        assert!(v.dot(Vec3::new(1.0, 1.0, 1.0).normalized()).abs() > 1.0 - 1e-6);
    }

    #[test]
    fn fit_requires_seven_measurements() {
        let acq = Acquisition::new(vec![0.0, 1000.0], vec![Vec3::ZERO, Vec3::X]);
        assert!(TensorFit::fit(&acq, &[100.0, 50.0]).is_none());
    }

    #[test]
    fn fit_handles_nonpositive_signal() {
        let acq = six_dir_protocol();
        let mut signal = vec![500.0; acq.len()];
        signal[3] = 0.0; // dead measurement must not produce NaN
        let fit = TensorFit::fit(&acq, &signal);
        assert!(fit.is_some());
        let t = fit.unwrap().tensor;
        assert!(t.trace().is_finite());
    }

    #[test]
    fn degenerate_eigenvector_fallback() {
        let t = SymTensor3::isotropic(1.0);
        let v = t.eigenvector(1.0);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }
}
