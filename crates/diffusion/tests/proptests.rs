//! Property-based tests of diffusion-model invariants.

use proptest::prelude::*;
use tracto_diffusion::models::ball_two_sticks_predict;
use tracto_diffusion::posterior::{BallSticksParams, NUM_PARAMETERS};
use tracto_diffusion::{
    Acquisition, BallSticksModel, BallSticksPosterior, DiffusionModel, PriorConfig, SymTensor3,
    TensorFit,
};
use tracto_volume::Vec3;

fn unit_vec() -> impl Strategy<Value = Vec3> {
    (1e-3f64..std::f64::consts::PI - 1e-3, -3.0f64..3.0)
        .prop_map(|(t, p)| Vec3::from_spherical(t, p))
}

fn protocol() -> Acquisition {
    let dirs = [
        (1.0, 0.0, 0.0),
        (0.0, 1.0, 0.0),
        (0.0, 0.0, 1.0),
        (1.0, 1.0, 0.0),
        (1.0, -1.0, 0.0),
        (1.0, 0.0, 1.0),
        (1.0, 0.0, -1.0),
        (0.0, 1.0, 1.0),
        (0.0, 1.0, -1.0),
        (1.0, 1.0, 1.0),
        (-1.0, 1.0, 1.0),
        (1.0, -1.0, 1.0),
    ];
    let mut bvals = vec![0.0];
    let mut grads = vec![Vec3::ZERO];
    for (x, y, z) in dirs {
        bvals.push(1000.0);
        grads.push(Vec3::new(x, y, z));
    }
    Acquisition::new(bvals, grads)
}

proptest! {
    #[test]
    fn prediction_bounded_by_s0(
        s0 in 1.0f64..2000.0,
        d in 1e-5f64..5e-3,
        f1 in 0.0f64..0.6,
        f2 in 0.0f64..0.39,
        dir1 in unit_vec(),
        dir2 in unit_vec(),
        b in 0.0f64..3000.0,
        g in unit_vec(),
    ) {
        let mu = ball_two_sticks_predict(s0, d, f1, f2, dir1, dir2, b, g);
        prop_assert!(mu > 0.0 && mu <= s0 * (1.0 + 1e-12),
            "prediction {mu} outside (0, s0={s0}]");
    }

    #[test]
    fn prediction_nonincreasing_in_b(
        d in 1e-4f64..3e-3,
        f1 in 0.0f64..0.7,
        dir1 in unit_vec(),
        g in unit_vec(),
        b1 in 0.0f64..1500.0,
        db in 0.0f64..1500.0,
    ) {
        let m = BallSticksModel::new(100.0, d, vec![f1], vec![dir1]);
        prop_assert!(m.predict(b1 + db, g) <= m.predict(b1, g) + 1e-9);
    }

    #[test]
    fn eigenvalues_sorted_and_sum_to_trace(
        dxx in -2.0f64..2.0, dxy in -1.0f64..1.0, dxz in -1.0f64..1.0,
        dyy in -2.0f64..2.0, dyz in -1.0f64..1.0, dzz in -2.0f64..2.0,
    ) {
        let t = SymTensor3 { dxx, dxy, dxz, dyy, dyz, dzz };
        let e = t.eigenvalues();
        prop_assert!(e[0] >= e[1] && e[1] >= e[2]);
        prop_assert!((e[0] + e[1] + e[2] - t.trace()).abs() < 1e-8);
        // Eigenvectors satisfy the definition.
        for lambda in e {
            let v = t.eigenvector(lambda);
            let r = t.mul_vec(v) - v * lambda;
            prop_assert!(r.norm() < 1e-5, "residual {} for λ={lambda}", r.norm());
        }
    }

    #[test]
    fn fa_in_unit_interval(
        axis in unit_vec(),
        l_par in 1e-4f64..3e-3,
        ratio in 0.01f64..1.0,
    ) {
        let t = SymTensor3::cylindrical(axis, l_par, l_par * ratio);
        let fa = t.fractional_anisotropy();
        prop_assert!((0.0..=1.0).contains(&fa));
        // More anisotropic (smaller ratio) ⇒ larger FA.
        let t2 = SymTensor3::cylindrical(axis, l_par, l_par * (ratio * 0.5));
        prop_assert!(t2.fractional_anisotropy() + 1e-12 >= fa);
    }

    #[test]
    fn tensor_fit_roundtrip(
        axis in unit_vec(),
        l_par in 5e-4f64..3e-3,
        ratio in 0.05f64..0.9,
        s0 in 100.0f64..2000.0,
    ) {
        let truth = SymTensor3::cylindrical(axis, l_par, l_par * ratio);
        let acq = protocol();
        let signal: Vec<f64> = (0..acq.len())
            .map(|i| s0 * (-acq.bval(i) * truth.quadratic_form(acq.grad(i))).exp())
            .collect();
        let fit = TensorFit::fit(&acq, &signal).unwrap();
        prop_assert!((fit.s0 - s0).abs() / s0 < 1e-6);
        prop_assert!((fit.tensor.dxx - truth.dxx).abs() < 1e-8);
        prop_assert!((fit.tensor.dyz - truth.dyz).abs() < 1e-8);
        prop_assert!(
            fit.tensor.principal_direction().dot(axis).abs() > 1.0 - 1e-5
        );
    }

    #[test]
    fn params_array_roundtrip(vals in prop::collection::vec(-10.0f64..10.0, NUM_PARAMETERS)) {
        let mut arr = [0.0; NUM_PARAMETERS];
        arr.copy_from_slice(&vals);
        let p = BallSticksParams::from_array(arr);
        prop_assert_eq!(p.to_array(), arr);
        // Sorting preserves the parameter multiset of the sticks.
        let s = p.sorted_by_fraction();
        prop_assert!(s.f1 >= s.f2);
        let mut orig = [p.f1, p.f2];
        let mut sorted = [s.f1, s.f2];
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(orig, sorted);
    }

    #[test]
    fn prior_support_characterization(
        s0 in -100.0f64..2000.0,
        d in -1e-3f64..0.03,
        sigma in -1.0f64..100.0,
        f1 in -0.2f64..1.2,
        f2 in -0.2f64..1.2,
        th1 in -0.5f64..3.7,
        th2 in -0.5f64..3.7,
    ) {
        let acq = protocol();
        let signal = vec![100.0; acq.len()];
        let prior = PriorConfig::default();
        let post = BallSticksPosterior::new(&acq, &signal, prior);
        let p = BallSticksParams {
            s0, d, sigma, f1, th1, ph1: 0.3, f2, th2, ph2: -0.7,
        };
        let in_support = s0 > 0.0
            && d > 0.0
            && d <= prior.d_max
            && sigma > 0.0
            && (0.0..=1.0).contains(&f1)
            && (0.0..=1.0).contains(&f2)
            && f1 + f2 <= 1.0
            && th1.sin().abs() > 0.0
            && th2.sin().abs() > 0.0;
        prop_assert_eq!(post.log_prior(&p).is_finite(), in_support);
    }
}
