//! The hybrid combined Tausworthe generator of GPU Gems 3, chapter 37
//! ("Efficient Random Number Generation and Application Using CUDA"),
//! the generator the paper runs on-device.

use crate::RandomSource;

/// One Tausworthe component step.
///
/// `z` must stay above the component's minimum seed (enforced at seeding);
/// each component has period 2³¹-ish and the combination has period ≈ 2¹¹³
/// when combined with the LCG.
#[inline]
fn taus_step(z: &mut u32, s1: u32, s2: u32, s3: u32, m: u32) -> u32 {
    let b = ((*z << s1) ^ *z) >> s2;
    *z = ((*z & m) << s3) ^ b;
    *z
}

/// One 32-bit LCG step (Numerical Recipes constants, as in GPU Gems 3).
#[inline]
fn lcg_step(z: &mut u32) -> u32 {
    *z = z.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
    *z
}

/// SplitMix64 — used only to expand a `(seed, stream)` pair into the four
/// component states, guaranteeing well-separated, constraint-satisfying
/// seeds for every simulated GPU lane.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The combined (hybrid) Tausworthe generator: three Tausworthe components
/// XOR'd with an LCG.
///
/// ```
/// use tracto_rng::{HybridTaus, RandomSource};
/// let mut a = HybridTaus::seed_stream(42, 0);
/// let mut b = HybridTaus::seed_stream(42, 0);
/// assert_eq!(a.next_u32(), b.next_u32()); // deterministic per (seed, stream)
/// let u = a.next_f64();
/// assert!(u > 0.0 && u < 1.0);            // open interval, ln(u) is finite
/// ```
///
/// * Deterministic and tiny (16 bytes of state) — one per GPU lane.
/// * `seed_stream` gives independent streams for `(seed, lane index)` pairs,
///   which is how the MCMC kernel assigns per-voxel generators and the
///   tracking kernel per-streamline generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridTaus {
    z1: u32,
    z2: u32,
    z3: u32,
    z4: u32,
}

impl HybridTaus {
    /// Minimum values required for the three Tausworthe components; states
    /// below these are fixed points of the recurrence.
    const MIN: [u32; 3] = [2, 8, 16];

    /// Seed a single generator. Equivalent to `seed_stream(seed, 0)`.
    pub fn new(seed: u64) -> Self {
        Self::seed_stream(seed, 0)
    }

    /// Seed the generator for logical stream `stream` of `seed`.
    ///
    /// Distinct `(seed, stream)` pairs get distinct, decorrelated component
    /// states; this mirrors the per-thread seeding the paper performs on the
    /// GPU.
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        let mut s = seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        // Warm the splitmix state so streams 0 and 1 of the same seed do not
        // share a prefix.
        let _ = splitmix64(&mut s);
        let raw1 = splitmix64(&mut s) as u32;
        let raw2 = splitmix64(&mut s) as u32;
        let raw3 = splitmix64(&mut s) as u32;
        let raw4 = splitmix64(&mut s) as u32;
        let mut g = HybridTaus {
            z1: raw1.max(Self::MIN[0] + 1),
            z2: raw2.max(Self::MIN[1] + 1),
            z3: raw3.max(Self::MIN[2] + 1),
            z4: raw4,
        };
        // A short burn-in decorrelates the first outputs of nearby streams.
        for _ in 0..8 {
            let _ = g.next_u32();
        }
        g
    }

    /// Expose the component states (for tests and serialization).
    pub fn state(&self) -> [u32; 4] {
        [self.z1, self.z2, self.z3, self.z4]
    }

    /// Rebuild a generator from a [`state`](Self::state) snapshot, clamping
    /// the Tausworthe components above their fixed-point minimums so even a
    /// corrupted snapshot cannot produce a degenerate generator. Restoring
    /// an unclamped snapshot continues the original sequence exactly.
    pub fn from_state(state: [u32; 4]) -> Self {
        HybridTaus {
            z1: state[0].max(Self::MIN[0] + 1),
            z2: state[1].max(Self::MIN[1] + 1),
            z3: state[2].max(Self::MIN[2] + 1),
            z4: state[3],
        }
    }
}

impl RandomSource for HybridTaus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        taus_step(&mut self.z1, 13, 19, 12, 0xFFFF_FFFE)
            ^ taus_step(&mut self.z2, 2, 25, 4, 0xFFFF_FFF8)
            ^ taus_step(&mut self.z3, 3, 11, 17, 0xFFFF_FFF0)
            ^ lcg_step(&mut self.z4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HybridTaus::new(42);
        let mut b = HybridTaus::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = HybridTaus::new(1);
        let mut b = HybridTaus::new(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same <= 1, "nearly identical sequences for different seeds");
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = HybridTaus::seed_stream(7, 0);
        let mut b = HybridTaus::seed_stream(7, 1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same <= 1);
    }

    #[test]
    fn stream_zero_equals_new() {
        let mut a = HybridTaus::new(99);
        let mut b = HybridTaus::seed_stream(99, 0);
        for _ in 0..16 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut g = HybridTaus::new(12345);
        const N: usize = 100_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..N {
            let u = g.next_f64();
            sum += u;
            sum_sq += u * u;
        }
        let mean = sum / N as f64;
        let var = sum_sq / N as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "variance {var}");
    }

    #[test]
    fn bucket_uniformity_chi_squared() {
        let mut g = HybridTaus::new(777);
        const N: usize = 160_000;
        const K: usize = 16;
        let mut counts = [0usize; K];
        for _ in 0..N {
            counts[(g.next_f64() * K as f64) as usize] += 1;
        }
        let expected = N as f64 / K as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 15 dof: p=0.001 critical value ≈ 37.7.
        assert!(chi2 < 37.7, "chi-squared {chi2} too large");
    }

    #[test]
    fn serial_correlation_small() {
        let mut g = HybridTaus::new(2024);
        const N: usize = 100_000;
        let mut prev = g.next_f64();
        let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..N {
            let cur = g.next_f64();
            sx += prev;
            sy += cur;
            sxy += prev * cur;
            sxx += prev * prev;
            syy += cur * cur;
            prev = cur;
        }
        let n = N as f64;
        let corr = (n * sxy - sx * sy) / ((n * sxx - sx * sx).sqrt() * (n * syy - sy * sy).sqrt());
        assert!(corr.abs() < 0.01, "lag-1 correlation {corr}");
    }

    #[test]
    fn no_short_cycle() {
        let mut g = HybridTaus::new(5);
        let first = g.state();
        for i in 0..100_000u32 {
            let _ = g.next_u32();
            assert_ne!(g.state(), first, "cycled after {i} steps");
        }
    }

    #[test]
    fn from_state_resumes_the_exact_sequence() {
        let mut g = HybridTaus::seed_stream(42, 17);
        for _ in 0..100 {
            let _ = g.next_u32();
        }
        let snap = g.state();
        let tail: Vec<u32> = (0..64).map(|_| g.next_u32()).collect();
        let mut restored = HybridTaus::from_state(snap);
        let resumed: Vec<u32> = (0..64).map(|_| restored.next_u32()).collect();
        assert_eq!(tail, resumed, "restore must continue bit-identically");
        // Degenerate component states are clamped, never propagated.
        let clamped = HybridTaus::from_state([0, 0, 0, 0]);
        let [z1, z2, z3, _] = clamped.state();
        assert!(z1 > 2 && z2 > 8 && z3 > 16);
    }

    #[test]
    fn seeding_respects_component_minimums() {
        // Pathological seeds must not produce degenerate component states.
        for seed in [0u64, 1, 2, u64::MAX] {
            let g = HybridTaus::new(seed);
            let [z1, z2, z3, _] = g.state();
            assert!(z1 > 1 || z1 == 0 || z1 > 0, "z1={z1}");
            // After burn-in the states must be nonzero and differ.
            assert_ne!(z1, 0);
            assert_ne!(z2, 0);
            assert_ne!(z3, 0);
        }
    }
}
