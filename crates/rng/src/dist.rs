//! Small distribution helpers built on [`RandomSource`].

use crate::RandomSource;

/// Uniform value in `[lo, hi)`.
#[inline]
pub fn uniform_range<R: RandomSource>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// Uniform integer in `[0, n)` using rejection-free multiply-shift.
#[inline]
pub fn uniform_index<R: RandomSource>(rng: &mut R, n: usize) -> usize {
    debug_assert!(n > 0);
    // Multiply-shift maps a 32-bit uniform onto [0, n) with negligible bias
    // for the n (≤ millions) used here.
    ((rng.next_u32() as u64 * n as u64) >> 32) as usize
}

/// Uniform point on the unit sphere, returned as `(θ, φ)` spherical angles.
///
/// Sampling is area-uniform: `cos θ ~ U(-1, 1)`, `φ ~ U(-π, π)`.
#[inline]
pub fn uniform_sphere_angles<R: RandomSource>(rng: &mut R) -> (f64, f64) {
    let cos_theta = uniform_range(rng, -1.0, 1.0);
    let phi = uniform_range(rng, -std::f64::consts::PI, std::f64::consts::PI);
    (cos_theta.clamp(-1.0, 1.0).acos(), phi)
}

/// Exponential variate with rate `lambda` by inversion.
///
/// Used to build synthetic load distributions matching the paper's finding
/// that fiber lengths are exponentially distributed (Eq. 4).
#[inline]
pub fn exponential<R: RandomSource>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    -rng.next_f64().ln() / lambda
}

/// Bernoulli trial with success probability `p`.
#[inline]
pub fn bernoulli<R: RandomSource>(rng: &mut R, p: f64) -> bool {
    rng.next_f64() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HybridTaus;

    #[test]
    fn uniform_range_bounds_and_mean() {
        let mut g = HybridTaus::new(1);
        let mut sum = 0.0;
        const N: usize = 50_000;
        for _ in 0..N {
            let v = uniform_range(&mut g, -2.0, 6.0);
            assert!((-2.0..6.0).contains(&v));
            sum += v;
        }
        assert!((sum / N as f64 - 2.0).abs() < 0.05);
    }

    #[test]
    fn uniform_index_covers_all_buckets() {
        let mut g = HybridTaus::new(2);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            seen[uniform_index(&mut g, 7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn uniform_index_unbiased() {
        let mut g = HybridTaus::new(3);
        const N: usize = 70_000;
        let mut counts = [0usize; 7];
        for _ in 0..N {
            counts[uniform_index(&mut g, 7)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / N as f64;
            assert!((frac - 1.0 / 7.0).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn sphere_sampling_is_area_uniform() {
        let mut g = HybridTaus::new(4);
        const N: usize = 100_000;
        // cos θ must be uniform on [-1,1]: check its mean and variance.
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..N {
            let (theta, phi) = uniform_sphere_angles(&mut g);
            assert!((0.0..=std::f64::consts::PI).contains(&theta));
            assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&phi));
            let ct = theta.cos();
            sum += ct;
            sum2 += ct * ct;
        }
        let mean = sum / N as f64;
        let var = sum2 / N as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean cosθ {mean}");
        assert!((var - 1.0 / 3.0).abs() < 0.01, "var cosθ {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut g = HybridTaus::new(5);
        const N: usize = 100_000;
        let lambda = 0.25;
        let mean = (0..N).map(|_| exponential(&mut g, lambda)).sum::<f64>() / N as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_always_nonnegative() {
        let mut g = HybridTaus::new(6);
        for _ in 0..10_000 {
            assert!(exponential(&mut g, 1.0) >= 0.0);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut g = HybridTaus::new(7);
        const N: usize = 100_000;
        let hits = (0..N).filter(|_| bernoulli(&mut g, 0.3)).count();
        assert!((hits as f64 / N as f64 - 0.3).abs() < 0.01);
    }
}
