//! Combined Tausworthe PRNG and Box–Muller transform.
//!
//! The paper generates all randomness on the device with the *hybrid*
//! combined generator of GPU Gems 3 (ch. 37): three Tausworthe steps XOR'd
//! with a 32-bit LCG step. Pre-generating random numbers on the host is
//! infeasible — the paper computes `NumVoxels × NumLoops × NumParameters × 3`
//! values (> 20 GB) — so each simulated GPU lane owns an independent
//! generator state, exactly as in the original implementation.
//!
//! This crate provides:
//!
//! * [`HybridTaus`] — the combined Tausworthe + LCG generator;
//! * [`BoxMuller`] — Gaussian variates via the Box–Muller transform
//!   (the paper's source of proposal noise), built on any [`RandomSource`];
//! * [`dist`] — small distribution helpers (uniform range, unit sphere,
//!   exponential) used by the phantom generator and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;

mod boxmuller;
mod taus;

pub use boxmuller::{box_muller_pair, BoxMuller};
pub use taus::HybridTaus;

/// A deterministic source of uniform random `u32`s / floats.
///
/// Implemented by [`HybridTaus`]; the MCMC and tracking kernels are generic
/// over this trait so tests can substitute counting or constant sources.
pub trait RandomSource {
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32;

    /// Uniform `f64` in the open interval `(0, 1)`.
    ///
    /// The end points are excluded so that `ln(u)` and `ln(1-u)` are always
    /// finite — both Box–Muller and exponential inversion depend on this.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 2^-32 scaling of (x + 0.5) maps {0 … 2^32-1} into (0, 1).
        (self.next_u32() as f64 + 0.5) * 2.328_306_436_538_696_3e-10
    }

    /// Uniform `f32` in `(0, 1)`.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u32);
    impl RandomSource for Counting {
        fn next_u32(&mut self) -> u32 {
            let v = self.0;
            self.0 = self.0.wrapping_add(1);
            v
        }
    }

    #[test]
    fn next_f64_open_interval_extremes() {
        let mut lo = Counting(0);
        let v = lo.next_f64();
        assert!(v > 0.0 && v < 1e-9);
        let mut hi = Counting(u32::MAX);
        let v = hi.next_f64();
        assert!(v < 1.0 && v > 1.0 - 1e-9);
    }

    #[test]
    fn next_f32_in_open_interval() {
        let mut c = Counting(0);
        for _ in 0..100 {
            let v = c.next_f32();
            assert!(v > 0.0 && v < 1.0);
        }
    }
}
