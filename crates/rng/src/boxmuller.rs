//! Box–Muller Gaussian variates.
//!
//! The MH proposal in the paper draws its Gaussian perturbation by the
//! Box–Muller transformation of two uniform variates (the paper's "three
//! random numbers per MH step": two for the Gaussian proposal, one for the
//! accept/reject draw).

use crate::RandomSource;

/// A Gaussian variate source wrapping any [`RandomSource`].
///
/// Each Box–Muller evaluation yields two independent standard normals; the
/// second is cached, so amortized cost is one `ln`, one `sqrt`, one
/// `sin_cos` per two variates — the same arithmetic the GPU kernel performs.
#[derive(Debug, Clone)]
pub struct BoxMuller<R> {
    source: R,
    cached: Option<f64>,
}

impl<R: RandomSource> BoxMuller<R> {
    /// Wrap a uniform source.
    pub fn new(source: R) -> Self {
        BoxMuller {
            source,
            cached: None,
        }
    }

    /// Next standard normal N(0, 1).
    #[inline]
    pub fn next_standard(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        let u1 = self.source.next_f64();
        let u2 = self.source.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
        self.cached = Some(r * s);
        r * c
    }

    /// Next normal with the given mean and standard deviation.
    #[inline]
    pub fn next(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_standard()
    }

    /// Access the underlying uniform source (e.g. for the accept/reject
    /// uniform draw of the same lane).
    pub fn source_mut(&mut self) -> &mut R {
        &mut self.source
    }

    /// Unwrap the source.
    pub fn into_source(self) -> R {
        self.source
    }
}

/// One-shot Box–Muller: transform two uniforms in (0,1) into two independent
/// standard normals. This is the exact kernel-side primitive; [`BoxMuller`]
/// is the buffered convenience wrapper.
#[inline]
pub fn box_muller_pair(u1: f64, u2: f64) -> (f64, f64) {
    debug_assert!(u1 > 0.0 && u1 < 1.0 && u2 > 0.0 && u2 < 1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
    (r * c, r * s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HybridTaus;

    #[test]
    fn standard_normal_moments() {
        let mut g = BoxMuller::new(HybridTaus::new(42));
        const N: usize = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut sum3 = 0.0;
        let mut sum4 = 0.0;
        for _ in 0..N {
            let z = g.next_standard();
            sum += z;
            sum2 += z * z;
            sum3 += z * z * z;
            sum4 += z * z * z * z;
        }
        let n = N as f64;
        let mean = sum / n;
        let var = sum2 / n - mean * mean;
        let skew = sum3 / n;
        let kurt = sum4 / n;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.05, "skewness {skew}");
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn scaled_normal_moments() {
        let mut g = BoxMuller::new(HybridTaus::new(7));
        const N: usize = 100_000;
        let (mu, sigma) = (3.0, 0.5);
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..N {
            let z = g.next(mu, sigma);
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / N as f64;
        let var = sum2 / N as f64 - mean * mean;
        assert!((mean - mu).abs() < 0.01);
        assert!((var - sigma * sigma).abs() < 0.01);
    }

    #[test]
    fn pair_function_finite_for_extreme_uniforms() {
        let tiny = f64::MIN_POSITIVE;
        let (a, b) = box_muller_pair(tiny, 0.5);
        assert!(a.is_finite() && b.is_finite());
        let (a, b) = box_muller_pair(1.0 - 1e-16, 1.0 - 1e-16);
        assert!(a.is_finite() && b.is_finite());
    }

    #[test]
    fn pair_values_independent_dimensions() {
        // The two outputs of one transform are uncorrelated by construction;
        // sanity-check empirically.
        let mut g = HybridTaus::new(99);
        const N: usize = 50_000;
        let mut sxy = 0.0;
        for _ in 0..N {
            let (a, b) = box_muller_pair(
                crate::RandomSource::next_f64(&mut g),
                crate::RandomSource::next_f64(&mut g),
            );
            sxy += a * b;
        }
        assert!((sxy / N as f64).abs() < 0.02);
    }

    #[test]
    fn cached_value_used_once() {
        let mut g1 = BoxMuller::new(HybridTaus::new(5));
        let mut g2 = BoxMuller::new(HybridTaus::new(5));
        // Drawing four values one at a time equals drawing two pairs.
        let seq: Vec<f64> = (0..4).map(|_| g1.next_standard()).collect();
        let (a, b) = {
            let s = g2.source_mut();
            let u1 = s.next_f64();
            let u2 = s.next_f64();
            box_muller_pair(u1, u2)
        };
        assert_eq!(seq[0], a);
        assert_eq!(seq[1], b);
    }

    #[test]
    fn tail_probability_reasonable() {
        let mut g = BoxMuller::new(HybridTaus::new(2025));
        const N: usize = 100_000;
        let beyond_2 = (0..N).filter(|_| g.next_standard().abs() > 2.0).count();
        let frac = beyond_2 as f64 / N as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!(
            (frac - 0.0455).abs() < 0.005,
            "two-sigma tail fraction {frac}"
        );
    }
}
