//! Offline shim for the slice of `proptest` this workspace uses. Each
//! `proptest!` test runs a fixed number of cases with inputs drawn from a
//! deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible across runs. No shrinking: a failing case panics with the
//! assertion message directly.

/// Number of cases each `proptest!` test executes.
pub const NUM_CASES: u32 = 96;

/// Deterministic RNG and failure plumbing used by the generated tests.
pub mod test_runner {
    /// A failed property within a test case (carries the message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// splitmix64-based deterministic generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the test's name).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase for heterogeneous composition (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_unit_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn gen_value(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.next_unit_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Length specification for [`vec`]: an exact size or a half-open range.
        #[derive(Debug, Clone)]
        pub struct SizeRange(std::ops::Range<usize>);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n..n + 1)
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty length range");
                SizeRange(r)
            }
        }

        /// Strategy for `Vec<T>` with length drawn from `len` (half-open).
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// `Vec` of values from `element`, with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into().0,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.gen_value(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define deterministic property tests. Each `fn` body runs [`NUM_CASES`]
/// times with freshly drawn inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..$crate::NUM_CASES {
                $(let $arg = $crate::strategy::Strategy::gen_value(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!("property failed on case {case}: {e}");
                }
            }
        }
    )*};
}

/// Assert a property inside `proptest!`; failure aborts the current case
/// with a message instead of unwinding mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategy arms that share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_draws() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (3u32..17).gen_value(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.5f64..4.0).gen_value(&mut rng);
            assert!((-2.5..4.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("compose");
        let s = prop::collection::vec((0usize..4, 0.0f64..1.0), 1..9);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!(!v.is_empty() && v.len() < 9);
            for (i, f) in v {
                assert!(i < 4 && (0.0..1.0).contains(&f));
            }
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(a in 0u64..100, pair in (0i32..5, -1.0f64..1.0)) {
            prop_assert!(a < 100);
            let (i, f) = pair;
            prop_assert!((0..5).contains(&i));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert_eq!(i as i64 * 2, (i + i) as i64);
        }

        #[test]
        fn oneof_picks_every_kind(v in prop_oneof![Just(0u8), Just(1u8), 2u8..4]) {
            prop_assert!(v < 4);
        }
    }
}
