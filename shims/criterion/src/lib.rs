//! Offline shim for the slice of `criterion` this workspace uses. Benches
//! compile against the same API (`criterion_group!`, `benchmark_group`,
//! `Bencher::iter`, `Throughput`) but the harness is deliberately simple:
//! a short timed loop per benchmark, printed as ns/iter. When cargo runs a
//! bench target under `cargo test` it passes `--test`; in that mode each
//! benchmark body executes exactly once as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Units processed per iteration, for derived throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times a single benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record the total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness handle, mirroring criterion's builder API.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }
    // Warm-up / calibration: single run to size the measured batch.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    f(&mut b);
    let once = warm_start.elapsed().max(Duration::from_nanos(1));
    while warm_start.elapsed() < warm_up_time {
        let mut w = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut w);
    }
    let budget_iters = (measurement_time.as_nanos() / once.as_nanos()).max(1) as u64;
    let iters = budget_iters.min(sample_size as u64).max(1);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!("{label}: {per_iter_ns:.0} ns/iter ({rate:.3e} elem/s, {iters} iters)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter_ns / 1e9);
            println!("{label}: {per_iter_ns:.0} ns/iter ({rate:.3e} B/s, {iters} iters)");
        }
        None => println!("{label}: {per_iter_ns:.0} ns/iter ({iters} iters)"),
    }
}

impl Criterion {
    /// Set the number of measured iterations (upper bound here).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Set the target measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            name,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            None,
            &mut f,
        );
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the measured iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark a function within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Bundle benchmark functions with an optional `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iters() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        // Under `cargo test` the harness is in test mode: bodies run once.
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(8));
        let mut ran = false;
        g.bench_function("noop", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
