//! Offline shim for the slice of `parking_lot` this workspace uses:
//! `Mutex`, `RwLock`, and `Condvar` with parking_lot's non-poisoning API,
//! implemented over `std::sync`. A poisoned std lock (a panic while held)
//! is unwrapped into the inner guard, matching parking_lot's behavior of
//! simply continuing.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Whether a condition-variable wait returned by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait timed out rather than being notified.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot-style:
/// `wait` takes `&mut guard`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            *done = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_timeout_reports() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        let res = pair.1.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
