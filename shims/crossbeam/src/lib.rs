//! Offline shim for the slice of `crossbeam` this workspace uses: the
//! `channel` module's MPMC channels. Both `Sender` and `Receiver` clone
//! freely; `bounded(cap)` blocks senders at capacity (backpressure);
//! disconnection follows crossbeam semantics (a channel disconnects when
//! all peers on the other side are gone — receivers still drain buffered
//! messages first).

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half (cloneable).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receivers disconnected; the message is returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a `try_send` failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded buffer is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// All senders disconnected and the buffer is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message buffered right now.
        Empty,
        /// All senders gone and the buffer is drained.
        Disconnected,
    }

    /// Why a `recv_timeout` failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders gone and the buffer is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    fn shared<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }

    /// A bounded MPMC channel: `send` blocks while `cap` messages are
    /// buffered. `cap` must be at least 1 (crossbeam's zero-capacity
    /// rendezvous channel is not implemented).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "this shim does not implement zero-capacity rendezvous channels"
        );
        shared(Some(cap))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded buffer is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Send without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = st.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the buffer is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message or sender-side disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// Whether the buffer is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_backpressure_blocks_until_drained() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(3).unwrap())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn mpmc_all_messages_delivered_once() {
        let (tx, rx) = channel::bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = channel::unbounded();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 9);
        assert!(rx.recv().is_err());

        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = channel::unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, channel::RecvTimeoutError::Timeout);
    }
}
