//! Offline shim for the slice of the `bytes` crate this workspace uses:
//! little-endian `Buf` reads over `&[u8]` and `BufMut` appends onto
//! `Vec<u8>`. Semantics match bytes 1.x for the implemented methods
//! (including the panic-on-underflow contract of `get_*`).

/// Read-side cursor operations (implemented for `&[u8]`).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: {} < {}",
            self.len(),
            dst.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side append operations (implemented for `Vec<u8>`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_slice(b"TRV3");
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(-1.5);
        buf.put_f64_le(std::f64::consts::PI);

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 4 + 4 + 8 + 4 + 8);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"TRV3");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.get_f64_le(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
