//! Offline shim for the slice of `rayon` this workspace uses.
//!
//! The registry is unreachable in the build environment, so this local
//! crate stands in for rayon 1.x. It is a *real* data-parallel executor —
//! work is split into contiguous chunks across `std::thread::scope`
//! threads — but it only implements the combinators the workspace calls:
//! `par_iter`, `into_par_iter`, `par_chunks_mut`, `map`, and `collect`
//! into `Vec`. Results are returned in input order, so swapping the real
//! rayon back in changes nothing observable.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Items-with-a-map pipeline, evaluated in parallel at `collect` time.
pub struct Map<P, F> {
    producer: P,
    f: F,
}

/// An owned parallel iterator over materialized items.
pub struct ParItems<T> {
    items: Vec<T>,
}

/// Number of worker threads to use for `n` items.
fn threads_for(n: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(n).max(1)
}

/// Map `items` in parallel, preserving order.
fn parallel_map_vec<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let workers = threads_for(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into `workers` contiguous chunks, map each on its own scoped
    // thread, then stitch the per-chunk outputs back together in order.
    let chunk_len = n.div_ceil(workers);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut outputs: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            outputs.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    outputs.into_iter().flatten().collect()
}

/// The subset of rayon's `ParallelIterator` the workspace relies on.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Materialize the items (sequentially — parallelism happens at the
    /// terminal operation).
    fn into_items(self) -> Vec<Self::Item>;

    /// Lazily apply `f` to every item.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { producer: self, f }
    }

    /// Execute the pipeline and collect into a container (only
    /// `Vec<Self::Item>` is supported, matching workspace usage).
    fn collect<C: FromParallel<Self::Item>>(self) -> C {
        C::from_items(self.into_items())
    }

    /// Execute the pipeline for side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        parallel_map_vec(self.into_items(), &|item| f(item));
    }
}

/// Collect target abstraction (rayon's `FromParallelIterator`).
pub trait FromParallel<T> {
    /// Build the container from ordered items.
    fn from_items(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_items(items: Vec<T>) -> Self {
        items
    }
}

impl<T: Send> ParallelIterator for ParItems<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn into_items(self) -> Vec<R> {
        parallel_map_vec(self.producer.into_items(), &self.f)
    }
}

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParItems<T>;
    fn into_par_iter(self) -> ParItems<T> {
        ParItems { items: self }
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParItems<$t>;
            fn into_par_iter(self) -> ParItems<$t> {
                ParItems { items: self.collect() }
            }
        }
    )*};
}
range_into_par!(usize, u32, u64, i32, i64);

/// Borrowing conversion (rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel-iterate over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParItems<&'a T>;
    fn par_iter(&'a self) -> ParItems<&'a T> {
        ParItems {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParItems<&'a T>;
    fn par_iter(&'a self) -> ParItems<&'a T> {
        ParItems {
            items: self.iter().collect(),
        }
    }
}

/// Parallel mutable-chunk access (rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Split into disjoint `&mut` chunks of `chunk_size`, iterated in
    /// parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParItems<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParItems<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParItems {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// The drop-in prelude, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        FromParallel, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let out: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 5, 2, 6, 10, 3, 7]);
    }

    #[test]
    fn par_chunks_mut_disjoint_and_complete() {
        let mut v: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = v
            .par_chunks_mut(10)
            .map(|chunk| {
                for x in chunk.iter_mut() {
                    *x += 1;
                }
                chunk.iter().sum()
            })
            .collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(v[0], 1);
        assert_eq!(v[102], 103);
        assert_eq!(sums.iter().sum::<u32>(), v.iter().sum::<u32>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return; // single-core CI: nothing to assert
        }
        let ids: Vec<std::thread::ThreadId> = (0..256usize)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        let first = ids[0];
        assert!(
            ids.iter().any(|&id| id != first),
            "expected >1 worker thread"
        );
    }
}
